#include "workload/compressor.hpp"

#include <algorithm>
#include <cstring>
#include <queue>

#include "core/error.hpp"
#include "workload/crc32.hpp"

namespace zerodeg::workload {

namespace frost_detail {

namespace {
constexpr std::uint8_t kEsc = 0xf7;
constexpr std::size_t kMinRun = 4;
}  // namespace

std::vector<std::uint8_t> rle_encode(std::span<const std::uint8_t> data) {
    std::vector<std::uint8_t> out;
    out.reserve(data.size());
    std::size_t i = 0;
    while (i < data.size()) {
        const std::uint8_t b = data[i];
        std::size_t run = 1;
        // Longest encodable run: count byte 255 => 255 + kMinRun - 1 bytes.
        while (i + run < data.size() && data[i + run] == b && run < 254 + kMinRun) ++run;
        if (run >= kMinRun) {
            out.push_back(kEsc);
            out.push_back(b);
            out.push_back(static_cast<std::uint8_t>(run - kMinRun + 1));  // 1..252ish
            i += run;
        } else if (b == kEsc) {
            // Escaped literal escape byte: run field 0.
            out.push_back(kEsc);
            out.push_back(kEsc);
            out.push_back(0);
            ++i;
        } else {
            out.push_back(b);
            ++i;
        }
    }
    return out;
}

std::vector<std::uint8_t> rle_decode(std::span<const std::uint8_t> data) {
    std::vector<std::uint8_t> out;
    out.reserve(data.size());
    std::size_t i = 0;
    while (i < data.size()) {
        const std::uint8_t b = data[i];
        if (b == kEsc) {
            if (i + 2 >= data.size()) throw core::CorruptData("rle: truncated escape");
            const std::uint8_t value = data[i + 1];
            const std::uint8_t count = data[i + 2];
            if (count == 0) {
                if (value != kEsc) throw core::CorruptData("rle: bad literal escape");
                out.push_back(kEsc);
            } else {
                out.insert(out.end(), count + kMinRun - 1, value);
            }
            i += 3;
        } else {
            out.push_back(b);
            ++i;
        }
    }
    return out;
}

void BitWriter::put(std::uint32_t bits, int count) {
    if (count < 0 || count > 32) throw core::InvalidArgument("BitWriter::put: bad count");
    if (count == 0) return;
    // MSB-first within the given count, appended whole rather than bit by
    // bit; emits the same byte stream as the original single-bit loop.
    const std::uint64_t mask = count == 32 ? 0xffffffffull : (1ull << count) - 1;
    acc_ = (acc_ << count) | (static_cast<std::uint64_t>(bits) & mask);
    acc_bits_ += count;
    while (acc_bits_ >= 8) {
        acc_bits_ -= 8;
        bytes_.push_back(static_cast<std::uint8_t>((acc_ >> acc_bits_) & 0xff));
    }
}

std::vector<std::uint8_t> BitWriter::finish() {
    if (acc_bits_ > 0) {
        bytes_.push_back(static_cast<std::uint8_t>((acc_ << (8 - acc_bits_)) & 0xff));
        acc_ = 0;
        acc_bits_ = 0;
    }
    return std::move(bytes_);
}

void BitReader::fill() {
    while (buf_bits_ <= 56 && pos_ < bytes_.size()) {
        buf_ = (buf_ << 8) | bytes_[pos_++];
        buf_bits_ += 8;
    }
}

int BitReader::bit() {
    if (buf_bits_ == 0) {
        fill();
        if (buf_bits_ == 0) throw core::CorruptData("BitReader: out of data");
    }
    --buf_bits_;
    return static_cast<int>((buf_ >> buf_bits_) & 1u);
}

int BitReader::peek(int want, std::uint32_t& window) {
    if (want < 1 || want > 32) throw core::InvalidArgument("BitReader::peek: bad want");
    if (buf_bits_ < want) fill();
    const int have = std::min(want, buf_bits_);
    window = have == 0 ? 0
                       : static_cast<std::uint32_t>((buf_ >> (buf_bits_ - have)) &
                                                    ((1ull << have) - 1));
    return have;
}

bool BitReader::exhausted() const { return pos_ >= bytes_.size() && buf_bits_ == 0; }

std::vector<std::uint8_t> huffman_code_lengths(const std::vector<std::uint64_t>& freq) {
    struct Node {
        std::uint64_t weight;
        int index;  ///< tie-break for determinism
        int left = -1;
        int right = -1;
        int symbol = -1;
    };
    std::vector<Node> nodes;
    auto cmp = [&nodes](int a, int b) {
        if (nodes[a].weight != nodes[b].weight) return nodes[a].weight > nodes[b].weight;
        return nodes[a].index > nodes[b].index;
    };
    std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

    for (std::size_t s = 0; s < freq.size(); ++s) {
        if (freq[s] == 0) continue;
        nodes.push_back({freq[s], static_cast<int>(nodes.size()), -1, -1, static_cast<int>(s)});
        heap.push(static_cast<int>(nodes.size()) - 1);
    }
    if (nodes.empty()) throw core::InvalidArgument("huffman_code_lengths: no symbols");

    std::vector<std::uint8_t> lengths(freq.size(), 0);
    if (nodes.size() == 1) {
        lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
        return lengths;
    }
    while (heap.size() > 1) {
        const int a = heap.top();
        heap.pop();
        const int b = heap.top();
        heap.pop();
        nodes.push_back({nodes[a].weight + nodes[b].weight, static_cast<int>(nodes.size()), a, b,
                         -1});
        heap.push(static_cast<int>(nodes.size()) - 1);
    }
    // Depth-first depth assignment from the root.
    const int root = heap.top();
    std::vector<std::pair<int, int>> stack{{root, 0}};
    while (!stack.empty()) {
        const auto [n, depth] = stack.back();
        stack.pop_back();
        if (nodes[n].symbol >= 0) {
            lengths[static_cast<std::size_t>(nodes[n].symbol)] =
                static_cast<std::uint8_t>(std::max(depth, 1));
        } else {
            stack.emplace_back(nodes[n].left, depth + 1);
            stack.emplace_back(nodes[n].right, depth + 1);
        }
    }
    return lengths;
}

std::vector<std::uint32_t> canonical_codes(const std::vector<std::uint8_t>& lengths) {
    int max_len = 0;
    for (const std::uint8_t l : lengths) max_len = std::max(max_len, static_cast<int>(l));
    if (max_len > 32) throw core::InvalidArgument("canonical_codes: code too long");

    std::vector<std::uint32_t> length_count(static_cast<std::size_t>(max_len) + 1, 0);
    for (const std::uint8_t l : lengths) {
        if (l > 0) ++length_count[l];
    }
    std::vector<std::uint32_t> next_code(static_cast<std::size_t>(max_len) + 1, 0);
    std::uint32_t code = 0;
    for (int len = 1; len <= max_len; ++len) {
        code = (code + length_count[static_cast<std::size_t>(len) - 1]) << 1;
        next_code[static_cast<std::size_t>(len)] = code;
    }
    std::vector<std::uint32_t> codes(lengths.size(), 0);
    for (std::size_t s = 0; s < lengths.size(); ++s) {
        if (lengths[s] > 0) codes[s] = next_code[lengths[s]]++;
    }
    return codes;
}

namespace {

constexpr std::size_t kSymbols = 257;  // 256 byte values + EOB
constexpr std::uint32_t kEob = 256;

/// Canonical decoder: per-length first-code / first-symbol-index tables,
/// fronted by a primary lookup table that resolves codes of up to
/// kPrimaryBits in a single indexed load.  decode() consumes exactly the
/// bits the per-bit reference loop would and throws the same CorruptData
/// classifications (out-of-data vs invalid-code), so damaged blocks fail
/// identically — only faster.
class CanonicalDecoder {
public:
    explicit CanonicalDecoder(const std::vector<std::uint8_t>& lengths) {
        int max_len = 0;
        for (const std::uint8_t l : lengths) max_len = std::max(max_len, static_cast<int>(l));
        if (max_len == 0) throw core::CorruptData("huffman: empty code table");
        if (max_len > 32) throw core::CorruptData("huffman: oversized code length");
        max_len_ = max_len;
        first_code_.assign(static_cast<std::size_t>(max_len) + 1, 0);
        first_index_.assign(static_cast<std::size_t>(max_len) + 1, 0);
        count_.assign(static_cast<std::size_t>(max_len) + 1, 0);

        // Symbols sorted by (length, symbol) — canonical order.
        for (std::size_t s = 0; s < lengths.size(); ++s) {
            if (lengths[s] > 0) ++count_[lengths[s]];
        }
        std::uint32_t code = 0;
        std::uint32_t index = 0;
        for (int len = 1; len <= max_len; ++len) {
            code = (code + count_[static_cast<std::size_t>(len) - 1]) << 1;
            first_code_[static_cast<std::size_t>(len)] = code;
            first_index_[static_cast<std::size_t>(len)] = index;
            index += count_[static_cast<std::size_t>(len)];
        }
        symbols_by_code_.reserve(index);
        for (int len = 1; len <= max_len; ++len) {
            for (std::size_t s = 0; s < lengths.size(); ++s) {
                if (lengths[s] == len) symbols_by_code_.push_back(static_cast<std::uint32_t>(s));
            }
        }

        // Primary table: every kPrimaryBits-wide window whose leading bits
        // form a code of length <= kPrimaryBits maps straight to (symbol,
        // length).  Filled longest-length first so that with an
        // oversubscribed (corrupt) table, the SHORTEST matching code wins a
        // contested window — the same tie-break the reference scan applies.
        primary_bits_ = std::min(max_len_, kPrimaryBits);
        primary_.assign(std::size_t{1} << primary_bits_, PrimaryEntry{});
        for (int len = primary_bits_; len >= 1; --len) {
            const std::uint32_t n = count_[static_cast<std::size_t>(len)];
            for (std::uint32_t c = 0; c < n; ++c) {
                const std::uint32_t entry_code = first_code_[static_cast<std::size_t>(len)] + c;
                if (entry_code >= (std::uint32_t{1} << len)) break;  // corrupt oversubscribed table
                const std::uint32_t sym =
                    symbols_by_code_[first_index_[static_cast<std::size_t>(len)] + c];
                const int pad = primary_bits_ - len;
                const std::size_t base = std::size_t{entry_code} << pad;
                for (std::size_t f = 0; f < (std::size_t{1} << pad); ++f) {
                    primary_[base + f] = {static_cast<std::uint16_t>(sym),
                                          static_cast<std::uint8_t>(len)};
                }
            }
        }
    }

    [[nodiscard]] std::uint32_t decode(BitReader& reader) const {
        std::uint32_t window = 0;
        const int have = reader.peek(max_len_, window);
        if (have >= primary_bits_) {
            const PrimaryEntry e =
                primary_[window >> (have - primary_bits_)];
            if (e.length != 0) {
                reader.consume(e.length);
                return e.symbol;
            }
        }
        // Slow path: codes longer than the primary table, or a short tail.
        // Identical match order to the per-bit reference: shortest length
        // that covers the window wins.
        for (int len = 1; len <= have; ++len) {
            const std::uint32_t code = window >> (have - len);
            const std::uint32_t first = first_code_[static_cast<std::size_t>(len)];
            const std::uint32_t n = count_[static_cast<std::size_t>(len)];
            if (n > 0 && code >= first && code < first + n) {
                reader.consume(len);
                return symbols_by_code_[first_index_[static_cast<std::size_t>(len)] +
                                        (code - first)];
            }
        }
        // No match in the available bits: the reference loop would have
        // consumed them and asked for one more (out of data), or — with all
        // max_len_ bits in hand — declared the code invalid.
        if (have < max_len_) throw core::CorruptData("BitReader: out of data");
        throw core::CorruptData("huffman: invalid code in stream");
    }

private:
    static constexpr int kPrimaryBits = 11;

    struct PrimaryEntry {
        std::uint16_t symbol = 0;
        std::uint8_t length = 0;  ///< 0 = no code this short for the window
    };

    int max_len_ = 0;
    int primary_bits_ = 0;
    std::vector<std::uint32_t> first_code_;
    std::vector<std::uint32_t> first_index_;
    std::vector<std::uint32_t> count_;
    std::vector<std::uint32_t> symbols_by_code_;
    std::vector<PrimaryEntry> primary_;
};

std::vector<std::uint8_t> huffman_encode_block(std::span<const std::uint8_t> rle) {
    std::vector<std::uint64_t> freq(kSymbols, 0);
    for (const std::uint8_t b : rle) ++freq[b];
    freq[kEob] = 1;
    const std::vector<std::uint8_t> lengths = huffman_code_lengths(freq);
    const std::vector<std::uint32_t> codes = canonical_codes(lengths);

    std::vector<std::uint8_t> out(lengths.begin(), lengths.end());  // 257-byte table
    BitWriter writer;
    for (const std::uint8_t b : rle) writer.put(codes[b], lengths[b]);
    writer.put(codes[kEob], lengths[kEob]);
    const std::vector<std::uint8_t> bits = writer.finish();
    out.insert(out.end(), bits.begin(), bits.end());
    return out;
}

std::vector<std::uint8_t> huffman_decode_block(std::span<const std::uint8_t> payload,
                                               std::size_t expected_rle_max) {
    if (payload.size() < kSymbols) throw core::CorruptData("frost: payload shorter than table");
    const std::vector<std::uint8_t> lengths(payload.begin(), payload.begin() + kSymbols);
    const CanonicalDecoder decoder(lengths);
    BitReader reader(payload.subspan(kSymbols));
    std::vector<std::uint8_t> rle;
    rle.reserve(expected_rle_max);
    for (;;) {
        const std::uint32_t sym = decoder.decode(reader);
        if (sym == kEob) break;
        if (rle.size() > expected_rle_max) throw core::CorruptData("frost: block overruns");
        rle.push_back(static_cast<std::uint8_t>(sym));
    }
    return rle;
}

}  // namespace

}  // namespace frost_detail

namespace {

constexpr char kStreamMagic[4] = {'F', 'Z', '0', '1'};
constexpr std::uint32_t kBlockMagic = 0xb10cb10cu;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t off) {
    if (off + 4 > bytes.size()) throw core::CorruptData("frost: truncated integer");
    return static_cast<std::uint32_t>(bytes[off]) |
           static_cast<std::uint32_t>(bytes[off + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[off + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[off + 3]) << 24;
}

}  // namespace

std::size_t frost_block_count(std::size_t data_size, CompressorConfig config) {
    if (config.block_size == 0) throw core::InvalidArgument("frost: zero block size");
    return data_size == 0 ? 0 : (data_size + config.block_size - 1) / config.block_size;
}

std::vector<std::uint8_t> frost_compress(std::span<const std::uint8_t> data,
                                         CompressorConfig config) {
    const std::size_t blocks = frost_block_count(data.size(), config);
    std::vector<std::uint8_t> out;
    // Byte-wise append: gcc 12's -Wstringop-overflow misfires on the
    // char* range insert into a freshly-allocated vector.
    for (const char c : kStreamMagic) out.push_back(static_cast<std::uint8_t>(c));
    put_u32(out, static_cast<std::uint32_t>(blocks));
    put_u32(out, static_cast<std::uint32_t>(config.block_size));

    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t off = b * config.block_size;
        const std::size_t len = std::min(config.block_size, data.size() - off);
        const auto block = data.subspan(off, len);

        const std::vector<std::uint8_t> rle = frost_detail::rle_encode(block);
        std::vector<std::uint8_t> payload = frost_detail::huffman_encode_block(rle);
        std::uint8_t method = 1;
        if (payload.size() >= len) {
            payload.assign(block.begin(), block.end());
            method = 0;
        }

        put_u32(out, kBlockMagic);
        put_u32(out, static_cast<std::uint32_t>(len));
        put_u32(out, static_cast<std::uint32_t>(payload.size()));
        put_u32(out, crc32(block));
        out.push_back(method);
        out.insert(out.end(), payload.begin(), payload.end());
    }
    return out;
}

std::vector<BlockInfo> frost_block_directory(std::span<const std::uint8_t> container) {
    if (container.size() < 12 || std::memcmp(container.data(), kStreamMagic, 4) != 0) {
        throw core::CorruptData("frost: bad stream magic");
    }
    const std::uint32_t blocks = get_u32(container, 4);
    std::vector<BlockInfo> dir;
    std::size_t off = 12;
    for (std::uint32_t b = 0; b < blocks; ++b) {
        if (get_u32(container, off) != kBlockMagic) {
            throw core::CorruptData("frost: bad block magic");
        }
        BlockInfo info;
        info.offset = off;
        info.orig_size = get_u32(container, off + 4);
        info.comp_size = get_u32(container, off + 8);
        info.crc = get_u32(container, off + 12);
        if (off + 17 > container.size()) throw core::CorruptData("frost: truncated header");
        info.method = container[off + 16];
        off += 17;
        if (off + info.comp_size > container.size()) {
            throw core::CorruptData("frost: truncated payload");
        }
        off += info.comp_size;
        dir.push_back(info);
    }
    return dir;
}

std::vector<std::uint8_t> frost_decode_block(std::span<const std::uint8_t> container,
                                             const BlockInfo& info) {
    const auto payload = container.subspan(info.offset + 17, info.comp_size);
    std::vector<std::uint8_t> block;
    if (info.method == 0) {
        block.assign(payload.begin(), payload.end());
    } else if (info.method == 1) {
        const std::vector<std::uint8_t> rle =
            frost_detail::huffman_decode_block(payload, 3 * std::size_t{info.orig_size} + 16);
        block = frost_detail::rle_decode(rle);
    } else {
        throw core::CorruptData("frost: unknown method");
    }
    if (block.size() != info.orig_size) throw core::CorruptData("frost: size mismatch");
    if (crc32(block) != info.crc) throw core::CorruptData("frost: block CRC mismatch");
    return block;
}

std::vector<std::uint8_t> frost_decompress(std::span<const std::uint8_t> container) {
    const std::vector<BlockInfo> dir = frost_block_directory(container);
    std::vector<std::uint8_t> out;
    for (const BlockInfo& info : dir) {
        const std::vector<std::uint8_t> block = frost_decode_block(container, info);
        out.insert(out.end(), block.begin(), block.end());
    }
    return out;
}

}  // namespace zerodeg::workload
