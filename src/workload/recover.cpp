#include "workload/recover.hpp"

#include <cstring>

#include "core/error.hpp"

namespace zerodeg::workload {

namespace {

constexpr std::uint32_t kBlockMagic = 0xb10cb10cu;

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t off) {
    return static_cast<std::uint32_t>(bytes[off]) |
           static_cast<std::uint32_t>(bytes[off + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[off + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[off + 3]) << 24;
}

/// Rebuild a block directory by scanning for block magics — what
/// bzip2recover does when the stream structure is broken.
std::vector<BlockInfo> rescan_for_blocks(std::span<const std::uint8_t> container) {
    std::vector<BlockInfo> dir;
    if (container.size() < 21) return dir;
    std::size_t off = 12 <= container.size() ? 12 : 0;
    while (off + 21 <= container.size()) {
        if (get_u32(container, off) == kBlockMagic) {
            BlockInfo info;
            info.offset = off;
            info.orig_size = get_u32(container, off + 4);
            info.comp_size = get_u32(container, off + 8);
            info.crc = get_u32(container, off + 12);
            info.method = container[off + 16];
            if (off + 17 + info.comp_size <= container.size()) {
                dir.push_back(info);
                off += 17 + info.comp_size;
                continue;
            }
        }
        ++off;
    }
    return dir;
}

}  // namespace

RecoveryReport frost_recover(std::span<const std::uint8_t> container,
                             std::vector<std::uint8_t>* salvaged) {
    RecoveryReport report;
    std::vector<BlockInfo> dir;
    try {
        dir = frost_block_directory(container);
    } catch (const core::CorruptData&) {
        report.directory_damaged = true;
        dir = rescan_for_blocks(container);
    }
    report.total_blocks = dir.size();

    for (std::size_t i = 0; i < dir.size(); ++i) {
        try {
            const std::vector<std::uint8_t> block = frost_decode_block(container, dir[i]);
            report.salvaged_bytes += block.size();
            if (salvaged != nullptr) salvaged->insert(salvaged->end(), block.begin(), block.end());
        } catch (const core::CorruptData&) {
            report.corrupt_blocks.push_back(i);
            report.lost_bytes += dir[i].orig_size;
        }
    }
    return report;
}

}  // namespace zerodeg::workload
