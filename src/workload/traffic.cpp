#include "workload/traffic.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/error.hpp"

namespace zerodeg::workload {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

TrafficEngine::TrafficEngine(TrafficConfig config, std::uint64_t master_seed,
                             core::TimePoint origin)
    : config_(std::move(config)),
      origin_(origin),
      demand_(config_.mean_demand_seconds, master_seed),
      think_rng_(master_seed, "traffic.think"),
      slo_(config_.deadline_seconds) {
    if (!(config_.service_rate > 0.0)) {
        throw core::InvalidArgument("TrafficEngine: service_rate must be positive");
    }
    if (config_.mode == TrafficConfig::Mode::kOpen) {
        arrivals_.emplace(config_.open, master_seed, origin_);
        next_arrival_ = arrivals_->next_arrival();
    } else {
        if (config_.closed.users < 1) {
            throw core::InvalidArgument("TrafficEngine: closed.users must be >= 1");
        }
        if (!(config_.closed.think_seconds > 0.0)) {
            throw core::InvalidArgument("TrafficEngine: closed.think_seconds must be positive");
        }
        user_next_issue_.reserve(static_cast<std::size_t>(config_.closed.users));
        for (int u = 0; u < config_.closed.users; ++u) {
            user_next_issue_.push_back(think_rng_.exponential(1.0 / config_.closed.think_seconds));
        }
    }
}

void TrafficEngine::add_host(HostBinding binding) {
    hosts_.push_back(std::move(binding));
    queues_.emplace_back(config_.service_rate);
    host_up_.push_back(1);
}

std::size_t TrafficEngine::pick_host(std::optional<bool> tent_side) const {
    std::size_t best = hosts_.size();
    std::size_t best_depth = 0;
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (!host_up_[h]) continue;
        if (tent_side && hosts_[h].in_tent != *tent_side) continue;
        const std::size_t depth = queues_[h].in_service();
        if (best == hosts_.size() || depth < best_depth) {
            best = h;
            best_depth = depth;
        }
    }
    return best;
}

void TrafficEngine::finish_request(std::uint64_t request_id, double t) {
    if (config_.mode != TrafficConfig::Mode::kClosed) return;
    const auto it = requests_.find(request_id);
    if (it == requests_.end() || it->second.user < 0) return;
    const auto u = static_cast<std::size_t>(it->second.user);
    user_next_issue_[u] = t + think_rng_.exponential(1.0 / config_.closed.think_seconds);
}

void TrafficEngine::dispatch(double t, int user) {
    ++requests_issued_;
    const std::uint64_t rid = next_request_id_++;

    // Pick targets: least-loaded host overall, or — when cloning across the
    // split — the best tent host plus the best basement host (tent clone's
    // demand is drawn first).  Degenerates to a single clone when one side
    // has no operational host.
    std::vector<std::size_t> targets;
    if (config_.clone_across_split) {
        const std::size_t tent = pick_host(true);
        const std::size_t cellar = pick_host(false);
        if (tent < hosts_.size()) targets.push_back(tent);
        if (cellar < hosts_.size()) targets.push_back(cellar);
    } else {
        const std::size_t any = pick_host(std::nullopt);
        if (any < hosts_.size()) targets.push_back(any);
    }

    if (targets.empty()) {
        // Nowhere to run: the user saw no response at all.
        slo_.record_dropped();
        if (config_.mode == TrafficConfig::Mode::kClosed && user >= 0) {
            user_next_issue_[static_cast<std::size_t>(user)] =
                t + think_rng_.exponential(1.0 / config_.closed.think_seconds);
        }
        return;
    }

    RequestState state;
    state.arrival = t;
    state.user = user;
    for (std::size_t k = 0; k < targets.size(); ++k) {
        const std::uint64_t clone_id = rid * 2 + k;
        queues_[targets[k]].admit(clone_id, demand_.next(), t);
        state.placements.push_back({targets[k], clone_id});
        ++clones_issued_;
    }
    requests_.emplace(rid, std::move(state));
}

void TrafficEngine::process_completions(std::vector<PendingCompletion>& work) {
    // FIFO so first finish genuinely wins; cancelling a sibling first
    // advances its queue to the completion instant, which can (on an exact
    // tie) surface the sibling's own completion — those join the queue and
    // find the request already erased.
    std::vector<PsQueue::Completion> spill;
    for (std::size_t i = 0; i < work.size(); ++i) {
        const PendingCompletion pending = work[i];
        const std::uint64_t rid = pending.completion.id / 2;
        const auto it = requests_.find(rid);
        if (it == requests_.end()) continue;  // sibling of an already-finished request

        finish_request(rid, pending.completion.time);
        slo_.record(pending.completion.time - it->second.arrival);
        for (const RequestState::Placement& p : it->second.placements) {
            if (p.clone_id == pending.completion.id) continue;
            PsQueue& q = queues_[p.host];
            if (q.clock() < pending.completion.time) {
                spill.clear();
                q.advance_to(pending.completion.time, spill);
                for (const PsQueue::Completion& c : spill) work.push_back({p.host, c});
            }
            if (q.cancel(p.clone_id)) ++clones_cancelled_;
        }
        requests_.erase(it);
    }
    work.clear();
}

void TrafficEngine::drop_jobs_on_down_hosts() {
    std::vector<std::uint64_t> dropped;
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        host_up_[h] = (!hosts_[h].operational || hosts_[h].operational()) ? 1 : 0;
        if (host_up_[h] || queues_[h].in_service() == 0) continue;
        dropped.clear();
        queues_[h].drop_all(dropped);
        for (const std::uint64_t clone_id : dropped) {
            const std::uint64_t rid = clone_id / 2;
            const auto it = requests_.find(rid);
            if (it == requests_.end()) continue;
            auto& placements = it->second.placements;
            placements.erase(
                std::remove_if(placements.begin(), placements.end(),
                               [clone_id](const RequestState::Placement& p) {
                                   return p.clone_id == clone_id;
                               }),
                placements.end());
            if (placements.empty()) {
                // Every clone died with its host: the request is lost.
                finish_request(rid, now_);
                slo_.record_dropped();
                requests_.erase(it);
            }
        }
    }
}

void TrafficEngine::advance(core::TimePoint tick_end) {
    const double t_end = static_cast<double>((tick_end - origin_).count());
    if (t_end <= now_) {
        throw core::InvalidArgument("TrafficEngine::advance: tick_end must move forward");
    }
    const double tick_start = now_;

    drop_jobs_on_down_hosts();

    std::vector<PendingCompletion> work;
    for (;;) {
        // Next arrival: the cached open-loop instant, or the earliest
        // thinking user (ties to the lowest user index).
        double t_arr = kInf;
        std::size_t arr_user = 0;
        if (config_.mode == TrafficConfig::Mode::kOpen) {
            t_arr = next_arrival_;
        } else {
            for (std::size_t u = 0; u < user_next_issue_.size(); ++u) {
                if (user_next_issue_[u] < t_arr) {
                    t_arr = user_next_issue_[u];
                    arr_user = u;
                }
            }
        }

        // Next completion across all hosts (ties to the lowest host index).
        double t_comp = kInf;
        std::size_t comp_host = 0;
        for (std::size_t h = 0; h < queues_.size(); ++h) {
            const double t = queues_[h].next_completion_time();
            if (t < t_comp) {
                t_comp = t;
                comp_host = h;
            }
        }

        const double t_next = std::min(t_arr, t_comp);
        if (t_next > t_end) break;

        if (t_comp <= t_arr) {
            // Completions first at a tie, so admit() never skips a departure.
            std::vector<PsQueue::Completion> done;
            queues_[comp_host].advance_to(t_comp, done);
            for (const PsQueue::Completion& c : done) work.push_back({comp_host, c});
            process_completions(work);
        } else if (config_.mode == TrafficConfig::Mode::kOpen) {
            dispatch(t_arr, -1);
            next_arrival_ = arrivals_->next_arrival();
        } else {
            user_next_issue_[arr_user] = kInf;  // in flight until the response
            dispatch(t_arr, static_cast<int>(arr_user));
        }
    }

    // Quiet remainder of the tick: move every clock to t_end and settle the
    // busy-time integrals.  No completion can fire (the loop drained them).
    std::vector<PsQueue::Completion> leftovers;
    for (PsQueue& q : queues_) q.advance_to(t_end, leftovers);
    for (const PsQueue::Completion& c : leftovers) {
        // Defensive: only reachable through floating-point edge cases at
        // exactly t_end; account for them rather than losing requests.
        work.push_back({0, c});
    }
    if (!work.empty()) process_completions(work);
    now_ = t_end;

    // Publish per-host busy fractions and close the SLO tick row.
    const double span = t_end - tick_start;
    double busy_sum = 0.0;
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        const double busy = queues_[h].take_busy_seconds();
        total_busy_seconds_ += busy;
        const double frac = std::clamp(busy / span, 0.0, 1.0);
        busy_sum += frac;
        if (hosts_[h].set_load) hosts_[h].set_load(frac);
    }
    const double mean_util =
        hosts_.empty() ? 0.0 : busy_sum / static_cast<double>(hosts_.size());
    slo_.close_tick(tick_end, mean_util);
}

double TrafficEngine::mean_utilization() const {
    if (hosts_.empty() || now_ <= 0.0) return 0.0;
    return total_busy_seconds_ / (static_cast<double>(hosts_.size()) * now_);
}

}  // namespace zerodeg::workload
