#include "workload/ps_queue.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace zerodeg::workload {

PsQueue::PsQueue(double service_rate) : rate_(service_rate) {
    if (!(service_rate > 0.0)) {
        throw core::InvalidArgument("PsQueue: service_rate must be positive");
    }
}

void PsQueue::admit(std::uint64_t id, double demand, double now) {
    if (now < clock_) throw core::InvalidArgument("PsQueue::admit: time ran backwards");
    if (!(demand > 0.0)) throw core::InvalidArgument("PsQueue::admit: demand must be positive");
    // The caller has already drained departures up to `now`; the remaining
    // span holds no completion, so only the clock and shared progress move.
    if (!jobs_.empty()) {
        const double dt = now - clock_;
        const double work = dt * rate_ / static_cast<double>(jobs_.size());
        for (Job& j : jobs_) j.remaining -= work;
        busy_seconds_ += dt;
    }
    clock_ = now;
    jobs_.push_back({id, demand});
}

void PsQueue::advance_to(double t, std::vector<Completion>& out) {
    if (t < clock_) throw core::InvalidArgument("PsQueue::advance_to: time ran backwards");
    while (!jobs_.empty()) {
        const double n = static_cast<double>(jobs_.size());
        double min_rem = jobs_.front().remaining;
        for (const Job& j : jobs_) min_rem = std::min(min_rem, j.remaining);
        // Each resident job receives rate/n; the earliest departure is when
        // the least-loaded job's remaining work drains.
        const double dt_to_departure = min_rem * n / rate_;
        if (clock_ + dt_to_departure > t) {
            const double dt = t - clock_;
            const double work = dt * rate_ / n;
            for (Job& j : jobs_) j.remaining -= work;
            busy_seconds_ += dt;
            clock_ = t;
            return;
        }
        busy_seconds_ += dt_to_departure;
        clock_ += dt_to_departure;
        for (Job& j : jobs_) j.remaining -= min_rem;
        // Pop everything drained (ties depart together, admission order).
        std::vector<Job> still;
        still.reserve(jobs_.size());
        for (const Job& j : jobs_) {
            if (j.remaining <= 1e-12) {
                out.push_back({j.id, clock_});
            } else {
                still.push_back(j);
            }
        }
        jobs_ = std::move(still);
    }
    clock_ = t;
}

bool PsQueue::cancel(std::uint64_t id) {
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (it->id == id) {
            jobs_.erase(it);
            return true;
        }
    }
    return false;
}

void PsQueue::drop_all(std::vector<std::uint64_t>& out) {
    for (const Job& j : jobs_) out.push_back(j.id);
    jobs_.clear();
}

double PsQueue::next_completion_time() const {
    if (jobs_.empty()) return std::numeric_limits<double>::infinity();
    double min_rem = jobs_.front().remaining;
    for (const Job& j : jobs_) min_rem = std::min(min_rem, j.remaining);
    return clock_ + min_rem * static_cast<double>(jobs_.size()) / rate_;
}

double PsQueue::take_busy_seconds() {
    const double b = busy_seconds_;
    busy_seconds_ = 0.0;
    return b;
}

}  // namespace zerodeg::workload
