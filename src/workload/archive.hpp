// frost::Archive — the tar stand-in.
//
// The same record structure as ustar at the fidelity the workload needs:
// 512-byte headers carrying path, size and a header checksum, file contents
// padded to 512-byte records, and two zero records as the end marker.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workload/corpus.hpp"

namespace zerodeg::workload {

constexpr std::size_t kRecordSize = 512;

/// Serialize files into a single archive byte stream.
[[nodiscard]] std::vector<std::uint8_t> write_archive(const std::vector<CorpusFile>& files);

/// Parse an archive back into files.  Throws CorruptData on a bad header
/// checksum, truncated stream, or malformed size field.
[[nodiscard]] std::vector<CorpusFile> read_archive(std::span<const std::uint8_t> bytes);

/// Cheap structural validation (header checksums only, no content copy).
[[nodiscard]] bool archive_intact(std::span<const std::uint8_t> bytes);

}  // namespace zerodeg::workload
