// MD5 (RFC 1321), implemented from scratch.
//
// The paper's synthetic load verifies every compressed tarball by comparing
// its md5sum against a reference value computed at installation; a mismatch
// is the detector for the memory-corruption events of Section 4.2.2.  This
// is the same algorithm on the same role.  (MD5 is of course not to be used
// for security anywhere; here it is an integrity checksum, as in the paper.)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace zerodeg::workload {

using Md5Digest = std::array<std::uint8_t, 16>;

class Md5 {
public:
    Md5();

    /// Feed data incrementally.
    void update(std::span<const std::uint8_t> data);
    void update(const std::string& s);

    /// Finish and return the digest.  The object must not be reused after
    /// finalize() without reset().
    [[nodiscard]] Md5Digest finalize();

    void reset();

private:
    std::array<std::uint32_t, 4> state_;
    std::uint64_t total_bytes_ = 0;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffered_ = 0;
    bool finalized_ = false;

    void process_block(const std::uint8_t* block);
};

/// One-shot convenience.
[[nodiscard]] Md5Digest md5(std::span<const std::uint8_t> data);

/// Lowercase hex, as md5sum prints it.
[[nodiscard]] std::string to_hex(const Md5Digest& d);

}  // namespace zerodeg::workload
