// frost_recover — the bzip2recover analogue.
//
// Section 4.2.2: "While inspecting the tarball with the bzip2recover
// utility, it became clear that only a single one of the 396 bzip2
// compression blocks had been corrupted."  This utility performs the same
// forensics on a frost container: walk the block directory (rescanning for
// block magics if the directory itself is damaged), decode each block, and
// report which blocks fail their CRC and how many bytes are salvageable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workload/compressor.hpp"

namespace zerodeg::workload {

struct RecoveryReport {
    std::size_t total_blocks = 0;
    std::vector<std::size_t> corrupt_blocks;   ///< indices of damaged blocks
    std::size_t salvaged_bytes = 0;            ///< original bytes recovered
    std::size_t lost_bytes = 0;                ///< original bytes in bad blocks
    bool directory_damaged = false;            ///< had to rescan for magics

    [[nodiscard]] bool fully_intact() const {
        return corrupt_blocks.empty() && !directory_damaged;
    }
};

/// Analyze a (possibly damaged) container.  Never throws on corrupt input —
/// damage is the expected case here.
[[nodiscard]] RecoveryReport frost_recover(std::span<const std::uint8_t> container,
                                           std::vector<std::uint8_t>* salvaged = nullptr);

}  // namespace zerodeg::workload
