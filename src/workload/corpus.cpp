#include "workload/corpus.hpp"

#include <cstdio>

#include "core/error.hpp"

namespace zerodeg::workload {

namespace {

const char* const kDirs[] = {"arch",  "block", "crypto", "drivers", "fs",    "kernel",
                             "lib",   "mm",    "net",    "sound",   "init",  "ipc"};

const char* const kTypes[] = {"int", "long", "void", "char *", "size_t", "u32", "u64",
                              "struct page *", "struct inode *", "unsigned int"};

const char* const kIdents[] = {
    "buf",   "len",    "ret",   "err",   "flags", "offset", "page",  "inode", "dev",
    "state", "lock",   "count", "index", "entry", "head",   "queue", "mask",  "addr",
    "size",  "status", "ctx",   "req",   "tmp",   "node",   "data",  "pos"};

const char* const kCalls[] = {"kmalloc", "kfree",  "spin_lock",  "spin_unlock", "memcpy",
                              "memset",  "printk", "list_add",   "list_del",    "wait_event",
                              "schedule", "mutex_lock", "mutex_unlock", "atomic_inc"};

std::string pick(core::RngStream& rng, const char* const* list, std::size_t n) {
    return list[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
}

template <std::size_t N>
std::string pick(core::RngStream& rng, const char* const (&list)[N]) {
    return pick(rng, list, N);
}

void emit_function(core::RngStream& rng, std::string& out, int index) {
    char name[64];
    std::snprintf(name, sizeof name, "%s_%s_%d", pick(rng, kIdents).c_str(),
                  pick(rng, kCalls).c_str(), index);
    out += "static " + pick(rng, kTypes) + " " + name + "(";
    const int args = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < args; ++i) {
        if (i) out += ", ";
        out += pick(rng, kTypes) + " " + pick(rng, kIdents);
    }
    out += ")\n{\n";
    const int stmts = static_cast<int>(rng.uniform_int(3, 18));
    for (int i = 0; i < stmts; ++i) {
        const int kind = static_cast<int>(rng.uniform_int(0, 4));
        switch (kind) {
            case 0:
                out += "\t" + pick(rng, kTypes) + " " + pick(rng, kIdents) + " = " +
                       std::to_string(rng.uniform_int(0, 4096)) + ";\n";
                break;
            case 1:
                out += "\t" + pick(rng, kIdents) + " = " + pick(rng, kCalls) + "(" +
                       pick(rng, kIdents) + ");\n";
                break;
            case 2:
                out += "\tif (" + pick(rng, kIdents) + " < " + pick(rng, kIdents) +
                       ")\n\t\treturn -EINVAL;\n";
                break;
            case 3:
                out += "\t/* " + pick(rng, kIdents) + " must hold " + pick(rng, kIdents) +
                       " across this call */\n";
                break;
            default:
                out += "\tfor (" + pick(rng, kIdents) + " = 0; " + pick(rng, kIdents) + " < " +
                       pick(rng, kIdents) + "; ++" + pick(rng, kIdents) + ")\n\t\t" +
                       pick(rng, kCalls) + "(" + pick(rng, kIdents) + ");\n";
                break;
        }
    }
    out += "\treturn 0;\n}\n\n";
}

}  // namespace

SyntheticCorpus::SyntheticCorpus(CorpusConfig config, std::uint64_t seed) {
    if (config.total_bytes == 0 || config.mean_file_bytes == 0) {
        throw core::InvalidArgument("SyntheticCorpus: sizes must be positive");
    }
    core::RngStream rng{seed, "corpus"};
    const std::size_t dir_count =
        std::min(config.top_level_dirs, sizeof(kDirs) / sizeof(kDirs[0]));

    int file_index = 0;
    while (total_bytes_ < config.total_bytes) {
        CorpusFile f;
        const std::string dir = pick(rng, kDirs, dir_count);
        char path[128];
        std::snprintf(path, sizeof path, "%s/%s_%04d.c", dir.c_str(),
                      pick(rng, kIdents).c_str(), file_index++);
        f.path = path;

        std::string text = "/* auto-generated corpus file: " + f.path + " */\n";
        text += "#include <linux/kernel.h>\n#include <linux/module.h>\n\n";
        // Target size jitters around the mean by +/- 50%.
        const auto target = static_cast<std::size_t>(
            static_cast<double>(config.mean_file_bytes) * rng.uniform(0.5, 1.5));
        int fn = 0;
        while (text.size() < target) emit_function(rng, text, fn++);

        f.contents.assign(text.begin(), text.end());
        total_bytes_ += f.contents.size();
        files_.push_back(std::move(f));
    }
}

}  // namespace zerodeg::workload
