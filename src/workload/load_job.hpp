// The synthetic load cycle of Section 3.5:
//   pack the source tree (frost::Archive), compress it (frost), hash the
//   result (MD5), compare against the reference value computed at
//   installation; on mismatch, keep the bad tarball for forensics.
//
// Memory faults are injected between the buffers of the real pipeline: a
// corrupting bit flip lands in the compressed container exactly as a flipped
// DRAM bit in a page of the tar/bzip2 buffers landed in the paper's
// tarballs, and the same recovery forensics then applies.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "faults/memory_faults.hpp"
#include "workload/compressor.hpp"
#include "workload/corpus.hpp"
#include "workload/md5.hpp"
#include "workload/recover.hpp"

namespace zerodeg::workload {

struct LoadJobConfig {
    CorpusConfig corpus{};
    /// Chosen so the container carries ~396 blocks, the paper's count.
    std::size_t target_blocks = 396;
    /// The paper's corpus (a kernel tree) is far larger than ours; page
    /// operations are scaled so one run costs what the paper's run cost
    /// (~3.2e9 page ops over 27627 runs ~= 116k per run).
    double page_op_multiplier = 160.0;
    /// When true (default), clean runs reuse the cached deterministic
    /// container instead of recompressing — output is bit-identical, so
    /// only fault-affected runs pay for the full pipeline.  Disable in
    /// tests that want every run end-to-end.
    bool cache_clean_runs = true;
};

struct JobResult {
    bool hash_ok = true;
    Md5Digest digest{};
    std::uint64_t page_ops = 0;
    std::uint64_t raw_flips = 0;
    std::uint64_t corrected_flips = 0;
    /// Set when the hash mismatched and recovery ran on the stored tarball.
    std::optional<RecoveryReport> forensics;
};

class LoadJob {
public:
    LoadJob(LoadJobConfig config, std::uint64_t seed);

    /// Execute one cycle on a host with or without ECC memory.
    [[nodiscard]] JobResult run(faults::MemoryFaultModel& memory, bool ecc);

    [[nodiscard]] const Md5Digest& reference_digest() const { return reference_digest_; }
    [[nodiscard]] std::size_t block_count() const { return block_count_; }
    [[nodiscard]] std::size_t archive_bytes() const { return archive_.size(); }
    [[nodiscard]] std::size_t container_bytes() const { return reference_container_.size(); }
    [[nodiscard]] std::uint64_t page_ops_per_run() const { return page_ops_per_run_; }
    [[nodiscard]] const CompressorConfig& compressor_config() const { return comp_config_; }

    /// The pristine compressed container (for tests and examples).
    [[nodiscard]] const std::vector<std::uint8_t>& reference_container() const {
        return reference_container_;
    }

private:
    LoadJobConfig config_;
    CompressorConfig comp_config_;
    std::vector<std::uint8_t> archive_;
    std::vector<std::uint8_t> reference_container_;
    Md5Digest reference_digest_{};
    std::size_t block_count_ = 0;
    std::uint64_t page_ops_per_run_ = 0;
    core::RngStream flip_rng_;
};

}  // namespace zerodeg::workload
