// frost::BlockCompressor — the bzip2 stand-in.
//
// Like bzip2, frost compresses independent blocks, each carrying its own
// CRC of the original data; unlike bzip2 it uses RLE + canonical Huffman
// instead of BWT+MTF+Huffman (ratio is not the point — the *block structure*
// is, because Section 4.2.2's forensics depend on it: a single flipped bit
// corrupts exactly one of ~396 blocks and the rest remain recoverable).
//
// Container layout (all integers little-endian):
//   "FZ01"            4-byte stream magic
//   u32 block_count
//   u32 block_size    nominal uncompressed block size
//   then per block:
//     u32 0xB10CB10C  block magic (what recovery scans for)
//     u32 orig_size
//     u32 comp_size
//     u32 crc32       CRC-32 of the ORIGINAL block bytes
//     u8  method      0 = stored, 1 = RLE+Huffman
//     comp_size bytes of payload
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace zerodeg::workload {

struct CompressorConfig {
    std::size_t block_size = 16 * 1024;
};

struct BlockInfo {
    std::size_t offset = 0;     ///< of the block header in the container
    std::uint32_t orig_size = 0;
    std::uint32_t comp_size = 0;
    std::uint32_t crc = 0;
    std::uint8_t method = 0;
};

/// Compress `data` into a frost container.
[[nodiscard]] std::vector<std::uint8_t> frost_compress(std::span<const std::uint8_t> data,
                                                       CompressorConfig config = {});

/// Decompress a container; throws CorruptData on any structural or CRC
/// failure (bad magic, short payload, CRC mismatch).
[[nodiscard]] std::vector<std::uint8_t> frost_decompress(std::span<const std::uint8_t> container);

/// Parse the block directory without decompressing payloads.
[[nodiscard]] std::vector<BlockInfo> frost_block_directory(
    std::span<const std::uint8_t> container);

/// Decode and CRC-check one block (throws CorruptData if it is damaged).
/// This is the primitive the recovery utility is built on.
[[nodiscard]] std::vector<std::uint8_t> frost_decode_block(
    std::span<const std::uint8_t> container, const BlockInfo& info);

/// Number of blocks a data size maps to under `config`.
[[nodiscard]] std::size_t frost_block_count(std::size_t data_size, CompressorConfig config = {});

// --- internals, exposed for the unit/property tests ------------------------
namespace frost_detail {

/// Escape-coded run-length encoding (runs of >= 4 bytes).
[[nodiscard]] std::vector<std::uint8_t> rle_encode(std::span<const std::uint8_t> data);
[[nodiscard]] std::vector<std::uint8_t> rle_decode(std::span<const std::uint8_t> data);

/// LSB-first bit writer/reader.
class BitWriter {
public:
    void put(std::uint32_t bits, int count);
    [[nodiscard]] std::vector<std::uint8_t> finish();

private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t acc_ = 0;
    int acc_bits_ = 0;
};

class BitReader {
public:
    explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
    /// Read one bit; throws CorruptData past the end.
    [[nodiscard]] int bit();
    [[nodiscard]] bool exhausted() const;

    /// Expose up to `want` upcoming bits MSB-first without consuming them
    /// (refilling the internal buffer as needed); returns how many are
    /// actually available — fewer than `want` only near end of stream.
    /// `want` must be in [1, 32].
    [[nodiscard]] int peek(int want, std::uint32_t& window);
    /// Consume bits previously exposed by peek (count <= its return value).
    void consume(int count) { buf_bits_ -= count; }

private:
    void fill();

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;       ///< next unread byte
    std::uint64_t buf_ = 0;     ///< up to 64 buffered bits, MSB-first order
    int buf_bits_ = 0;
};

/// Huffman code lengths for the given symbol frequencies (0 frequency =>
/// length 0 / absent).  At least one symbol must have nonzero frequency.
[[nodiscard]] std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freq);

/// Canonical codes from lengths (symbols with length 0 get no code).
[[nodiscard]] std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths);

}  // namespace frost_detail

}  // namespace zerodeg::workload
