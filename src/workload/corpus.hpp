// Synthetic source-tree corpus.
//
// The paper's load compresses a Linux kernel source directory.  We cannot
// ship one, so this generates a deterministic tree of C-like source files
// with realistic statistics (token repetition, indentation, comments) —
// compressible the way source code is — at a configurable total size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace zerodeg::workload {

struct CorpusFile {
    std::string path;
    std::vector<std::uint8_t> contents;
};

struct CorpusConfig {
    /// Approximate total bytes across all files.
    std::size_t total_bytes = 2 * 1024 * 1024;
    /// Approximate bytes per file.
    std::size_t mean_file_bytes = 16 * 1024;
    /// Directory fan-out flavor ("drivers", "fs", "net", ...).
    std::size_t top_level_dirs = 8;
};

/// Deterministic for a given (config, seed).
class SyntheticCorpus {
public:
    SyntheticCorpus(CorpusConfig config, std::uint64_t seed);

    [[nodiscard]] const std::vector<CorpusFile>& files() const { return files_; }
    [[nodiscard]] std::size_t total_bytes() const { return total_bytes_; }
    [[nodiscard]] std::size_t file_count() const { return files_.size(); }

private:
    std::vector<CorpusFile> files_;
    std::size_t total_bytes_ = 0;
};

}  // namespace zerodeg::workload
