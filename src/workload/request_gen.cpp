#include "workload/request_gen.hpp"

#include <cmath>

#include "core/error.hpp"

namespace zerodeg::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// The largest instantaneous rate the curve can reach — the thinning
/// envelope.  Flash crowds multiply, so the envelope takes the largest one.
double rate_envelope(const OpenLoopConfig& config) {
    double crowd_max = 1.0;
    for (const FlashCrowd& c : config.flash_crowds) {
        if (c.multiplier > crowd_max) crowd_max = c.multiplier;
    }
    return config.base_rps * (1.0 + config.diurnal_amplitude) * crowd_max;
}

}  // namespace

double arrival_rate(const OpenLoopConfig& config, core::TimePoint t) {
    const double day_frac = t.day_fraction();
    const double peak_frac = config.peak_hour / 24.0;
    double rate = config.base_rps *
                  (1.0 + config.diurnal_amplitude * std::cos(kTwoPi * (day_frac - peak_frac)));
    for (const FlashCrowd& c : config.flash_crowds) {
        if (t >= c.start && t < c.start + c.duration) rate *= c.multiplier;
    }
    return rate;
}

OpenLoopGenerator::OpenLoopGenerator(OpenLoopConfig config, std::uint64_t master_seed,
                                     core::TimePoint origin)
    : config_(std::move(config)),
      origin_(origin),
      rng_(master_seed, "traffic.arrivals"),
      rate_max_(rate_envelope(config_)) {
    if (!(config_.base_rps > 0.0)) {
        throw core::InvalidArgument("OpenLoopGenerator: base_rps must be positive");
    }
    if (config_.diurnal_amplitude < 0.0 || config_.diurnal_amplitude >= 1.0) {
        throw core::InvalidArgument("OpenLoopGenerator: diurnal_amplitude must be in [0, 1)");
    }
}

double OpenLoopGenerator::next_arrival() {
    // Lewis-Shedler thinning: candidate interarrivals at the envelope rate,
    // accepted with probability rate(t)/rate_max.  Exact for any rate curve
    // bounded by the envelope, and fully replayable from the stream.
    for (;;) {
        t_ += rng_.exponential(rate_max_);
        const core::TimePoint at = origin_ + core::Duration::seconds(static_cast<std::int64_t>(t_));
        const double accept = arrival_rate(config_, at) / rate_max_;
        if (rng_.uniform01() < accept) return t_;
    }
}

DemandSampler::DemandSampler(double mean_seconds, std::uint64_t master_seed)
    : mean_(mean_seconds), rng_(master_seed, "traffic.demand") {
    if (!(mean_seconds > 0.0)) {
        throw core::InvalidArgument("DemandSampler: mean_seconds must be positive");
    }
}

double DemandSampler::next() { return rng_.exponential(1.0 / mean_); }

}  // namespace zerodeg::workload
