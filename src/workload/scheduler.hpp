// The per-host load scheduler of Section 3.5.
//
// "Each host executes its synthetic load every 10 minutes.  In order to
// avoid synchronization, some fuzz is added to the starting phase: each host
// sleeps for 0 to 119 seconds before commencing the archival process."
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "faults/memory_faults.hpp"
#include "workload/load_job.hpp"

namespace zerodeg::workload {

/// A wrong-hash incident, the unit of Section 4.2.2's census.
struct WrongHashIncident {
    core::TimePoint time;
    int host_id = 0;
    std::size_t corrupt_blocks = 0;
    std::size_t total_blocks = 0;
    bool recovered = false;  ///< all other blocks salvaged
};

struct HostLoadStats {
    std::uint64_t runs = 0;
    std::uint64_t wrong_hashes = 0;
    std::uint64_t skipped = 0;  ///< host was down at cycle time
    std::uint64_t ecc_corrected = 0;
    std::uint64_t page_ops = 0;
};

class LoadScheduler {
public:
    struct HostBinding {
        int host_id = 0;
        bool ecc = false;
        /// Checked at each cycle; a crashed host skips its run.
        std::function<bool()> operational;
    };

    /// One shared job definition (the corpus is the same on every host);
    /// per-host RNG streams keep the fuzz and faults independent.  The
    /// scheduler takes ownership of the job.
    LoadScheduler(core::Simulator& sim, LoadJob job, faults::MemoryFaultParams mem_params,
                  std::uint64_t master_seed,
                  core::Duration cycle = core::Duration::minutes(10));

    /// Register a host and start its cycle at `first_cycle` (typically the
    /// install date).
    void add_host(HostBinding binding, core::TimePoint first_cycle);

    /// Stop scheduling a host (retirement).
    void remove_host(int host_id);

    [[nodiscard]] const LoadJob& job() const { return job_; }
    [[nodiscard]] const HostLoadStats& stats(int host_id) const;
    [[nodiscard]] const std::map<int, HostLoadStats>& all_stats() const { return stats_; }
    [[nodiscard]] const std::vector<WrongHashIncident>& incidents() const { return incidents_; }

    [[nodiscard]] std::uint64_t total_runs() const;
    [[nodiscard]] std::uint64_t total_wrong_hashes() const;
    [[nodiscard]] std::uint64_t total_page_ops() const;

private:
    struct HostState {
        HostBinding binding;
        faults::MemoryFaultModel memory;
        core::RngStream fuzz_rng;
        core::EventId cycle_event = 0;
        bool removed = false;
    };

    core::Simulator& sim_;
    LoadJob job_;
    faults::MemoryFaultParams mem_params_;
    std::uint64_t master_seed_;
    core::Duration cycle_;
    std::map<int, HostState> hosts_;
    std::map<int, HostLoadStats> stats_;
    std::vector<WrongHashIncident> incidents_;

    void run_cycle(int host_id);
};

}  // namespace zerodeg::workload
