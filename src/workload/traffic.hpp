// Request-serving traffic workload: the utilization half of the paper's
// story.  The archive workload (scheduler.hpp) exercises disks and memory;
// this engine exercises the *CPU*: requests arrive (open- or closed-loop,
// request_gen.hpp), are dispatched to the least-loaded operational server,
// receive processor-sharing service (ps_queue.hpp), and their sojourn times
// feed latency/SLO accounting (slo.hpp).  Each server's busy fraction over
// a tick becomes its cpu load, which the runner couples onward:
//
//   utilization -> Server::set_cpu_load -> Fleet::wall_power
//                -> enclosure heat input -> intake temperature
//                -> faults::HazardTable stress
//
// so traffic shape (diurnal swing, flash crowds) shows up in the thermal
// trace and the fault census, which is the experiment the paper's free-air
// claim needs.
//
// Optionally each request is *cloned* across the tent/basement split
// (clone_across_split): one copy to the best tent host, one to the best
// basement host, first finish wins and cancels the sibling — the latency
// defense evaluated by the cloning reproducibility report in PAPERS.md.
//
// The engine is a continuous-time event loop advanced one experiment tick
// at a time, independent of the host-pass tick engine; per-object and
// batched engines therefore see byte-identical traffic by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "workload/ps_queue.hpp"
#include "workload/request_gen.hpp"
#include "workload/slo.hpp"

namespace zerodeg::workload {

/// Everything that shapes the traffic season.  Defaults give the 18-host
/// fleet a mean per-server utilization around one third, with diurnal peaks
/// and flash crowds pushing servers toward (transient) saturation.
struct TrafficConfig {
    enum class Mode { kOpen, kClosed };

    Mode mode = Mode::kOpen;
    OpenLoopConfig open{};      ///< used when mode == kOpen
    ClosedLoopConfig closed{};  ///< used when mode == kClosed

    /// Mean service demand per request, in seconds of *dedicated* service
    /// at rate 1.0 (exponential).  Per-server capacity in requests/s is
    /// service_rate / mean_demand_seconds.
    double mean_demand_seconds = 12.0;
    /// Server capacity, work-seconds per second (1.0 = one dedicated job
    /// progresses in real time).
    double service_rate = 1.0;
    /// Responses slower than this miss the SLO; drops always miss.
    double deadline_seconds = 60.0;
    /// Clone each request across the tent/basement split, first finish
    /// wins, loser is cancelled.
    bool clone_across_split = false;
};

class TrafficEngine {
public:
    /// One dispatchable server.  `operational` is sampled at dispatch time
    /// (host state only changes at tick boundaries, so it is stable within
    /// a tick); `set_load` receives the busy fraction in [0, 1] for the
    /// tick that just closed.  Hosts dispatch in add_host order; ties in
    /// queue depth go to the earliest-added host.
    struct HostBinding {
        std::string host_id;
        bool in_tent = false;
        std::function<bool()> operational;
        std::function<void(double)> set_load;
    };

    TrafficEngine(TrafficConfig config, std::uint64_t master_seed, core::TimePoint origin);

    void add_host(HostBinding binding);

    /// Simulate the traffic from the previous advance (or the origin) up to
    /// `tick_end`: arrivals, PS service, completions, cloning/cancellation,
    /// then publish every host's busy fraction through set_load and close
    /// the SLO tick row.  Must be called with strictly increasing times.
    void advance(core::TimePoint tick_end);

    // --- season-wide accounting -------------------------------------------
    [[nodiscard]] const SloTracker& slo() const { return slo_; }
    [[nodiscard]] std::uint64_t requests_issued() const { return requests_issued_; }
    [[nodiscard]] std::uint64_t clones_issued() const { return clones_issued_; }
    [[nodiscard]] std::uint64_t clones_cancelled() const { return clones_cancelled_; }
    [[nodiscard]] std::size_t in_flight() const { return requests_.size(); }
    [[nodiscard]] std::size_t hosts() const { return hosts_.size(); }
    /// Fleet-mean busy fraction over everything simulated so far.
    [[nodiscard]] double mean_utilization() const;

private:
    struct RequestState {
        double arrival = 0.0;
        int user = -1;  ///< closed-loop user index; -1 in open mode
        struct Placement {
            std::size_t host = 0;
            std::uint64_t clone_id = 0;
        };
        std::vector<Placement> placements;
    };

    struct PendingCompletion {
        std::size_t host = 0;
        PsQueue::Completion completion{};
    };

    void drop_jobs_on_down_hosts();
    void dispatch(double t, int user);
    void process_completions(std::vector<PendingCompletion>& work);
    void finish_request(std::uint64_t request_id, double t);  ///< closed-loop user re-think
    /// Least-loaded operational host; restricted to one side of the split
    /// when `side` is set.  Returns hosts_.size() when none qualifies.
    [[nodiscard]] std::size_t pick_host(std::optional<bool> tent_side) const;

    TrafficConfig config_;
    core::TimePoint origin_;
    std::vector<HostBinding> hosts_;
    std::vector<PsQueue> queues_;
    std::vector<char> host_up_;  ///< dispatchability, refreshed each tick

    std::optional<OpenLoopGenerator> arrivals_;
    double next_arrival_ = 0.0;  ///< open loop: cached next arrival instant
    DemandSampler demand_;
    core::RngStream think_rng_;
    std::vector<double> user_next_issue_;  ///< closed loop; +inf while in flight

    std::map<std::uint64_t, RequestState> requests_;  ///< in flight, by id
    std::uint64_t next_request_id_ = 1;
    double now_ = 0.0;  ///< seconds since origin, end of last advance

    SloTracker slo_;
    std::uint64_t requests_issued_ = 0;
    std::uint64_t clones_issued_ = 0;
    std::uint64_t clones_cancelled_ = 0;
    double total_busy_seconds_ = 0.0;
};

}  // namespace zerodeg::workload
