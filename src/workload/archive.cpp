#include "workload/archive.hpp"

#include <cstdio>
#include <cstring>

#include "core/error.hpp"

namespace zerodeg::workload {

namespace {

// Header layout (offsets into the 512-byte record), ustar-flavored:
//   0   name      100 bytes, NUL-terminated
//   124 size      12 bytes, octal ASCII
//   148 checksum  8 bytes, octal ASCII (computed with the field spaces)
//   257 magic     6 bytes "frost\0"
constexpr std::size_t kNameOff = 0;
constexpr std::size_t kNameLen = 100;
constexpr std::size_t kSizeOff = 124;
constexpr std::size_t kSizeLen = 12;
constexpr std::size_t kChkOff = 148;
constexpr std::size_t kChkLen = 8;
constexpr std::size_t kMagicOff = 257;
constexpr char kMagic[6] = {'f', 'r', 'o', 's', 't', '\0'};

std::uint32_t header_checksum(const std::uint8_t* rec) {
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < kRecordSize; ++i) {
        // The checksum field itself counts as spaces.
        sum += (i >= kChkOff && i < kChkOff + kChkLen) ? ' ' : rec[i];
    }
    return sum;
}

bool is_zero_record(const std::uint8_t* rec) {
    for (std::size_t i = 0; i < kRecordSize; ++i) {
        if (rec[i] != 0) return false;
    }
    return true;
}

}  // namespace

std::vector<std::uint8_t> write_archive(const std::vector<CorpusFile>& files) {
    std::vector<std::uint8_t> out;
    for (const CorpusFile& f : files) {
        if (f.path.size() >= kNameLen) {
            throw core::InvalidArgument("write_archive: path too long: " + f.path);
        }
        std::uint8_t rec[kRecordSize] = {};
        std::memcpy(rec + kNameOff, f.path.data(), f.path.size());
        char size_field[kSizeLen + 1];
        std::snprintf(size_field, sizeof size_field, "%011zo", f.contents.size());
        std::memcpy(rec + kSizeOff, size_field, kSizeLen);
        std::memcpy(rec + kMagicOff, kMagic, sizeof kMagic);
        char chk_field[kChkLen + 1] = {};
        std::snprintf(chk_field, sizeof chk_field, "%06o", header_checksum(rec));
        chk_field[7] = ' ';  // tar convention: NUL then space
        std::memcpy(rec + kChkOff, chk_field, kChkLen);

        out.insert(out.end(), rec, rec + kRecordSize);
        out.insert(out.end(), f.contents.begin(), f.contents.end());
        const std::size_t pad = (kRecordSize - f.contents.size() % kRecordSize) % kRecordSize;
        out.insert(out.end(), pad, 0);
    }
    // End-of-archive: two zero records.
    out.insert(out.end(), 2 * kRecordSize, 0);
    return out;
}

namespace {

struct HeaderView {
    std::string path;
    std::size_t size = 0;
};

HeaderView parse_header(const std::uint8_t* rec) {
    if (std::memcmp(rec + kMagicOff, kMagic, sizeof kMagic) != 0) {
        throw core::CorruptData("archive: bad magic in header");
    }
    char chk_text[kChkLen + 1] = {};
    std::memcpy(chk_text, rec + kChkOff, kChkLen);
    unsigned stored = 0;
    if (std::sscanf(chk_text, "%o", &stored) != 1 || stored != header_checksum(rec)) {
        throw core::CorruptData("archive: header checksum mismatch");
    }
    HeaderView h;
    const auto* name = reinterpret_cast<const char*>(rec + kNameOff);
    h.path.assign(name, strnlen(name, kNameLen));
    char size_text[kSizeLen + 1] = {};
    std::memcpy(size_text, rec + kSizeOff, kSizeLen);
    unsigned long long size = 0;
    if (std::sscanf(size_text, "%llo", &size) != 1) {
        throw core::CorruptData("archive: malformed size field");
    }
    h.size = static_cast<std::size_t>(size);
    return h;
}

}  // namespace

std::vector<CorpusFile> read_archive(std::span<const std::uint8_t> bytes) {
    std::vector<CorpusFile> files;
    std::size_t off = 0;
    while (off + kRecordSize <= bytes.size()) {
        const std::uint8_t* rec = bytes.data() + off;
        if (is_zero_record(rec)) return files;  // end marker
        const HeaderView h = parse_header(rec);
        off += kRecordSize;
        if (off + h.size > bytes.size()) throw core::CorruptData("archive: truncated contents");
        CorpusFile f;
        f.path = h.path;
        f.contents.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                          bytes.begin() + static_cast<std::ptrdiff_t>(off + h.size));
        files.push_back(std::move(f));
        off += h.size;
        off += (kRecordSize - h.size % kRecordSize) % kRecordSize;
    }
    throw core::CorruptData("archive: missing end-of-archive marker");
}

bool archive_intact(std::span<const std::uint8_t> bytes) {
    try {
        std::size_t off = 0;
        while (off + kRecordSize <= bytes.size()) {
            const std::uint8_t* rec = bytes.data() + off;
            if (is_zero_record(rec)) return true;
            const HeaderView h = parse_header(rec);
            off += kRecordSize + h.size;
            off += (kRecordSize - h.size % kRecordSize) % kRecordSize;
            if (off > bytes.size()) return false;
        }
        return false;
    } catch (const core::CorruptData&) {
        return false;
    }
}

}  // namespace zerodeg::workload
