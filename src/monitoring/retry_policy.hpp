// Retry/backoff policy for the monitoring host's collection sweeps.
//
// In the paper's setup a failed rsync pull simply waits for the next
// 20-minute sweep; a flapping switch (Section 4.2.1) therefore punches
// multi-hour holes in the telemetry.  The policy below lets the collector
// retry a failed host within the sweep interval — bounded attempts,
// exponential backoff, and a dash of deterministic jitter drawn from a named
// RNG stream so retries don't synchronize across hosts yet replay
// identically for the same master seed.
#pragma once

#include <cstdint>

#include "core/sim_time.hpp"

namespace zerodeg::monitoring {

struct CollectorRetryPolicy {
    /// Total tries per sweep per host.  1 = the paper's behaviour: one
    /// attempt, wait for the next sweep.
    int max_attempts = 1;

    /// Backoff before retry k (k = 2, 3, ...):
    ///   min(base_backoff * backoff_factor^(k-2), max_backoff)
    /// scaled by a jitter factor uniform in [1 - jitter_frac, 1 + jitter_frac].
    core::Duration base_backoff = core::Duration::seconds(30);
    double backoff_factor = 2.0;
    core::Duration max_backoff = core::Duration::minutes(5);
    double jitter_frac = 0.1;

    /// Host-side store-and-forward buffer.  Results accumulate on the host
    /// between successful collections; a bounded buffer drops the *oldest*
    /// bytes once full (the newest results are the ones the monitor is
    /// missing), and the collector accounts every dropped byte in the host's
    /// stats.  0 = unbounded, the legacy model.
    std::uint64_t buffer_capacity_bytes = 0;

    /// Seed of the "collector.retry" jitter stream.  The experiment runner
    /// overwrites this with the season's master seed so retry schedules are
    /// part of the season's deterministic replay.
    std::uint64_t master_seed = 0;
};

}  // namespace zerodeg::monitoring
