#include "monitoring/datalogger.hpp"

namespace zerodeg::monitoring {

LascarLogger::LascarLogger(core::Simulator& sim, const thermal::Enclosure& enclosure,
                           core::TimePoint first_sample, LascarConfig config,
                           core::RngStream rng)
    : sim_(sim),
      enclosure_(enclosure),
      config_(config),
      rng_(rng),
      first_sample_(first_sample < sim.now() ? sim.now() : first_sample) {
    sim_.schedule_every(first_sample_, config_.cadence, [this] { take_sample(); },
                        "lascar-sample " + enclosure.name());
}

void LascarLogger::schedule_readout(ReadoutTrip trip) { readouts_.push_back(trip); }

void LascarLogger::take_sample() {
    const core::TimePoint now = sim_.now();

    core::Celsius true_temp;
    core::RelHumidity true_rh;
    bool indoors = false;
    for (const ReadoutTrip& trip : readouts_) {
        if (trip.covers(now)) {
            indoors = true;
            break;
        }
    }
    if (indoors) {
        true_temp = config_.indoor_temp;
        true_rh = config_.indoor_rh;
    } else {
        const thermal::EnclosureAir air = enclosure_.air();
        true_temp = air.temperature;
        true_rh = air.humidity;
    }

    const core::Celsius measured_t =
        true_temp + core::Celsius{config_.temp_sigma.value() * rng_.normal()};
    const core::RelHumidity measured_rh =
        core::RelHumidity{true_rh.value() + config_.rh_sigma * rng_.normal()}.clamped();

    temperature_.append(now, measured_t.value());
    humidity_.append(now, measured_rh.value());
}

}  // namespace zerodeg::monitoring
