#include "monitoring/telemetry_io.hpp"

#include <set>
#include <sstream>

namespace zerodeg::monitoring {

std::string render_collection_csv(const Collector& collector) {
    std::ostringstream out;
    // Host ids come from the attempt log (the collector does not expose its
    // host table): every host that was ever swept appears there.
    std::set<int> host_ids;
    for (const CollectionAttempt& a : collector.log()) host_ids.insert(a.host_id);

    out << "host_id,attempts,successes,failures,retries,retry_successes,bytes,"
           "dropped_bytes,longest_gap_s,last_success\n";
    for (const int id : host_ids) {
        const HostCollectionStats& s = collector.stats(id);
        out << id << ',' << s.attempts << ',' << s.successes << ',' << s.failures << ','
            << s.retries << ',' << s.retry_successes << ',' << s.bytes << ','
            << s.dropped_bytes << ',' << s.longest_gap.count() << ','
            << (s.ever_succeeded ? s.last_success.to_string() : std::string("never")) << '\n';
    }

    out << "time,host_id,ok,retry,bytes\n";
    for (const CollectionAttempt& a : collector.log()) {
        out << a.time.to_string() << ',' << a.host_id << ',' << (a.ok ? 1 : 0) << ','
            << (a.retry ? 1 : 0) << ',' << a.bytes << '\n';
    }
    return out.str();
}

int write_collection_csv(core::FileSystem& fs, const std::filesystem::path& path,
                         const Collector& collector, core::IoRetryPolicy retry) {
    return core::write_file_durable(fs, path, render_collection_csv(collector), retry,
                                    "collection telemetry '" + path.string() + "'");
}

}  // namespace zerodeg::monitoring
