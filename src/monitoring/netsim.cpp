#include "monitoring/netsim.hpp"

#include <algorithm>

namespace zerodeg::monitoring {

std::size_t Network::add_switch(hardware::NetworkSwitch sw) {
    switches_.push_back(std::make_unique<hardware::NetworkSwitch>(std::move(sw)));
    return switches_.size() - 1;
}

void Network::replace_switch(std::size_t index, hardware::NetworkSwitch sw) {
    if (index >= switches_.size()) throw core::InvalidArgument("Network: bad switch index");
    *switches_[index] = std::move(sw);
}

void Network::attach(NetNode node, std::size_t switch_index) {
    if (switch_index >= switches_.size()) {
        throw core::InvalidArgument("Network::attach: bad switch index");
    }
    if (node_switch_.contains(node.id)) {
        throw core::InvalidArgument("Network::attach: node already attached");
    }
    const std::size_t used = port_use_[switch_index];
    if (used >= static_cast<std::size_t>(switches_[switch_index]->ports())) {
        throw core::InvalidArgument("Network::attach: switch out of ports");
    }
    ++port_use_[switch_index];
    node_switch_[node.id] = switch_index;
}

void Network::uplink(std::size_t from_switch, std::size_t to_switch) {
    if (from_switch >= switches_.size() || to_switch >= switches_.size()) {
        throw core::InvalidArgument("Network::uplink: bad switch index");
    }
    if (from_switch == to_switch) throw core::InvalidArgument("Network::uplink: self-link");
    if (uplinks_.contains(from_switch)) {
        throw core::InvalidArgument("Network::uplink: switch already uplinked");
    }
    // Both ends consume a port.
    ++port_use_[from_switch];
    ++port_use_[to_switch];
    uplinks_[from_switch] = to_switch;
    // Reject cycles: walking up from `to_switch` must not revisit
    // `from_switch`.
    std::size_t cur = to_switch;
    for (auto it = uplinks_.find(cur); it != uplinks_.end(); it = uplinks_.find(cur)) {
        cur = it->second;
        if (cur == from_switch) {
            uplinks_.erase(from_switch);
            throw core::InvalidArgument("Network::uplink: would create a cycle");
        }
    }
}

void Network::step(core::Duration dt) {
    for (const auto& sw : switches_) sw->step(dt);
}

std::vector<std::size_t> Network::path_to_root(std::size_t sw) const {
    std::vector<std::size_t> path{sw};
    std::size_t cur = sw;
    for (auto it = uplinks_.find(cur); it != uplinks_.end(); it = uplinks_.find(cur)) {
        cur = it->second;
        path.push_back(cur);
    }
    return path;
}

bool Network::path_up(int node_a, int node_b) const {
    const auto it_a = node_switch_.find(node_a);
    const auto it_b = node_switch_.find(node_b);
    if (it_a == node_switch_.end() || it_b == node_switch_.end()) return false;

    const std::vector<std::size_t> path_a = path_to_root(it_a->second);
    const std::vector<std::size_t> path_b = path_to_root(it_b->second);

    // Find the lowest common ancestor; every switch up to and including it
    // on both sides must be operational.
    for (std::size_t i = 0; i < path_a.size(); ++i) {
        const auto pos = std::find(path_b.begin(), path_b.end(), path_a[i]);
        if (pos == path_b.end()) continue;
        for (std::size_t k = 0; k <= i; ++k) {
            if (!switches_[path_a[k]]->operational()) return false;
        }
        for (auto it = path_b.begin(); it != pos; ++it) {
            if (!switches_[*it]->operational()) return false;
        }
        return switches_[*pos]->operational();
    }
    return false;  // disjoint trees
}

hardware::NetworkSwitch& Network::switch_at(std::size_t index) {
    if (index >= switches_.size()) throw core::InvalidArgument("Network: bad switch index");
    return *switches_[index];
}

const hardware::NetworkSwitch& Network::switch_at(std::size_t index) const {
    if (index >= switches_.size()) throw core::InvalidArgument("Network: bad switch index");
    return *switches_[index];
}

std::size_t Network::ports_used(std::size_t switch_index) const {
    const auto it = port_use_.find(switch_index);
    return it == port_use_.end() ? 0 : it->second;
}

NetworkGatedTransport::NetworkGatedTransport(const Network& net, int local, int peer,
                                             std::unique_ptr<core::Transport> inner)
    : net_(&net), local_(local), peer_(peer), inner_(std::move(inner)) {
    if (!inner_) throw core::InvalidArgument("NetworkGatedTransport: null inner transport");
}

void NetworkGatedTransport::require_path() const {
    if (!net_->path_up(local_, peer_)) {
        throw core::TransportClosed("link " + std::to_string(local_) + "<->" +
                                    std::to_string(peer_) +
                                    ": no operational switch path (dead switch?)");
    }
}

void NetworkGatedTransport::send(std::string_view frame) {
    require_path();
    inner_->send(frame);
}

bool NetworkGatedTransport::try_recv(std::string& frame) {
    // Already-delivered frames drain even across a dead switch.
    if (inner_->try_recv(frame)) return true;
    require_path();
    return false;
}

bool NetworkGatedTransport::recv_wait(std::string& frame, int timeout_ms) {
    if (inner_->try_recv(frame)) return true;
    require_path();
    return inner_->recv_wait(frame, timeout_ms);
}

void NetworkGatedTransport::close() { inner_->close(); }

bool NetworkGatedTransport::closed() const { return inner_->closed(); }

}  // namespace zerodeg::monitoring
