// The shared network of Section 3.5/4.2.1.
//
// Hosts hang off 8-port switches; the monitoring host pulls data through
// them.  When a defective switch dies (both loaner switches did, after about
// a week each), every host behind it drops off the collection path until the
// switch is swapped — the faults show up as telemetry gaps, not host
// failures, exactly as the authors experienced.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/sim_time.hpp"
#include "core/transport.hpp"
#include "hardware/network_switch.hpp"

namespace zerodeg::monitoring {

/// A node attached to the network (a load host or the monitor).
struct NetNode {
    int id = 0;
    std::string name;
};

class Network {
public:
    /// Add a switch; returns its index.
    std::size_t add_switch(hardware::NetworkSwitch sw);

    /// Replace a failed switch with a new unit (what the operator did).
    void replace_switch(std::size_t index, hardware::NetworkSwitch sw);

    /// Attach a node to a port of a switch.
    void attach(NetNode node, std::size_t switch_index);

    /// Uplink one switch to another (tree topology is enough here).
    void uplink(std::size_t from_switch, std::size_t to_switch);

    /// Advance all switches.
    void step(core::Duration dt);

    /// Is there a working path between the two nodes?  (All switches on the
    /// unique tree path must be operational.)
    [[nodiscard]] bool path_up(int node_a, int node_b) const;

    [[nodiscard]] hardware::NetworkSwitch& switch_at(std::size_t index);
    [[nodiscard]] const hardware::NetworkSwitch& switch_at(std::size_t index) const;
    [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }
    [[nodiscard]] std::size_t ports_used(std::size_t switch_index) const;

private:
    std::vector<std::unique_ptr<hardware::NetworkSwitch>> switches_;
    std::map<int, std::size_t> node_switch_;        ///< node id -> switch index
    std::map<std::size_t, std::size_t> uplinks_;    ///< child -> parent switch
    std::map<std::size_t, std::size_t> port_use_;

    /// Path from a switch to the root as a list of switch indices.
    [[nodiscard]] std::vector<std::size_t> path_to_root(std::size_t sw) const;
};

/// Bridges the simulated topology into the core::transport seam: every
/// operation on the wrapped Transport first consults
/// Network::path_up(local, peer), and a dead switch on the path surfaces as
/// core::TransportClosed — exactly how the distributed-sweep machinery sees a
/// hung-up peer.  The collector therefore observes a dead loaner switch as a
/// telemetry gap (degrade, buffer, retry next sweep), never as a host
/// failure, which is the paper's observed failure mode.
///
/// Frames the peer delivered *before* the switch died stay readable (they
/// already sit in the local receive buffer, like kernel socket buffers); only
/// new traffic is cut.  Swapping the switch (Network::replace_switch) brings
/// the same link back — the transport itself holds no failure state.
class NetworkGatedTransport final : public core::Transport {
public:
    /// @param net   must outlive the transport
    /// @param local this endpoint's node id on `net`
    /// @param peer  the remote endpoint's node id
    NetworkGatedTransport(const Network& net, int local, int peer,
                          std::unique_ptr<core::Transport> inner);

    void send(std::string_view frame) override;
    bool try_recv(std::string& frame) override;
    bool recv_wait(std::string& frame, int timeout_ms) override;
    void close() override;
    [[nodiscard]] bool closed() const override;

private:
    /// Throws core::TransportClosed when the tree path is down.
    void require_path() const;

    const Network* net_;
    int local_;
    int peer_;
    std::unique_ptr<core::Transport> inner_;
};

}  // namespace zerodeg::monitoring
