#include "monitoring/power_meter.hpp"

#include <cmath>

#include "core/error.hpp"

namespace zerodeg::monitoring {

TechnolineMeter::TechnolineMeter(core::Simulator& sim, std::function<core::Watts()> supply,
                                 core::TimePoint first_sample, PowerMeterConfig config,
                                 core::RngStream rng)
    : sim_(sim), supply_(std::move(supply)), config_(config) {
    if (!supply_) throw core::InvalidArgument("TechnolineMeter: missing supply callback");
    gain_ = 1.0 + config.gain_error_sigma * rng.normal();
    sim_.schedule_every(first_sample < sim.now() ? sim.now() : first_sample, config.cadence,
                        [this] { take_sample(); }, "power-meter-sample");
}

void TechnolineMeter::take_sample() {
    const core::TimePoint now = sim_.now();
    const core::Watts truth = supply_();

    const double raw = truth.value() * gain_;
    const double q = config_.quantization.value();
    const double displayed = q > 0.0 ? std::round(raw / q) * q : raw;
    power_.append(now, displayed);

    if (has_sample_) {
        const double dt = static_cast<double>((now - last_sample_).count());
        metered_energy_ += core::Joules{displayed * dt};
        true_energy_ += core::energy(truth, dt);
    }
    last_sample_ = now;
    has_sample_ = true;
}

}  // namespace zerodeg::monitoring
