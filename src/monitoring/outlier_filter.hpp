// The outlier-removal step of Section 3.3.
//
// "we have been forced to remove a number of outliers in the measurements
// caused by removing the data logger and carrying it indoors.  These
// outliers have been removed from the graphs."  Two strategies are offered:
// removal by the known readout windows (ground truth available in the sim),
// and blind removal by jump detection (what the authors actually had to do —
// an indoor trip shows up as a sudden implausible step toward office
// conditions and back).
#pragma once

#include <cstddef>
#include <vector>

#include "core/timeseries.hpp"
#include "monitoring/datalogger.hpp"

namespace zerodeg::monitoring {

/// Remove samples that fall inside any of the given readout trips (with a
/// guard band on both sides).  Returns the number removed.
std::size_t remove_readout_outliers(core::TimeSeries& series,
                                    const std::vector<ReadoutTrip>& trips,
                                    core::Duration guard = core::Duration::minutes(10));

struct JumpFilterConfig {
    /// A step of more than this many units between consecutive samples
    /// opens a suspect window...
    double jump_threshold = 8.0;
    /// ...and samples stay suspect until the series returns within this
    /// distance of the pre-jump level.
    double return_tolerance = 4.0;
    /// Give up and keep the data if the excursion lasts longer than this
    /// (a real weather front is not an outlier!).
    core::Duration max_excursion = core::Duration::hours(2);
};

/// Blind jump-detection filter; returns the number of samples removed.
std::size_t remove_jump_outliers(core::TimeSeries& series, const JumpFilterConfig& config = {});

}  // namespace zerodeg::monitoring
