#include "monitoring/outlier_filter.hpp"

#include <cmath>

namespace zerodeg::monitoring {

std::size_t remove_readout_outliers(core::TimeSeries& series,
                                    const std::vector<ReadoutTrip>& trips,
                                    core::Duration guard) {
    return series.remove_if([&](const core::Sample& s) {
        for (const ReadoutTrip& trip : trips) {
            if (s.time >= trip.start - guard && s.time <= trip.start + trip.duration + guard) {
                return true;
            }
        }
        return false;
    });
}

std::size_t remove_jump_outliers(core::TimeSeries& series, const JumpFilterConfig& config) {
    const auto& samples = series.samples();
    if (samples.size() < 3) return 0;

    std::vector<bool> drop(samples.size(), false);
    std::size_t i = 1;
    while (i < samples.size()) {
        const double step = std::abs(samples[i].value - samples[i - 1].value);
        if (step <= config.jump_threshold) {
            ++i;
            continue;
        }
        // Jump: mark forward until the series returns near the pre-jump
        // level or the window times out.
        const double base = samples[i - 1].value;
        const core::TimePoint jump_time = samples[i].time;
        std::size_t j = i;
        bool returned = false;
        while (j < samples.size()) {
            if (samples[j].time - jump_time > config.max_excursion) break;
            if (std::abs(samples[j].value - base) <= config.return_tolerance) {
                returned = true;
                break;
            }
            ++j;
        }
        if (returned) {
            for (std::size_t k = i; k < j; ++k) drop[k] = true;
            i = j + 1;
        } else {
            // Sustained excursion: keep it (weather, not a USB trip).
            ++i;
        }
    }

    std::size_t idx = 0;
    return series.remove_if([&](const core::Sample&) { return drop[idx++]; });
}

}  // namespace zerodeg::monitoring
