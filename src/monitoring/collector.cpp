#include "monitoring/collector.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/error.hpp"

namespace zerodeg::monitoring {

namespace {

void validate_policy(core::Duration cadence, const CollectorRetryPolicy& p) {
    const auto fail = [](const std::string& why) {
        throw core::InvalidArgument("Collector: " + why);
    };
    if (cadence.count() <= 0) fail("cadence must be positive");
    if (p.max_attempts < 1) {
        fail("retry.max_attempts must be >= 1, got " + std::to_string(p.max_attempts));
    }
    if (p.max_attempts > 1) {
        if (p.base_backoff.count() <= 0) fail("retry.base_backoff must be positive");
        if (p.backoff_factor < 1.0) fail("retry.backoff_factor must be >= 1");
        if (p.max_backoff < p.base_backoff) fail("retry.max_backoff must be >= base_backoff");
        if (p.jitter_frac < 0.0 || p.jitter_frac >= 1.0) {
            fail("retry.jitter_frac must be in [0, 1)");
        }
    }
}

}  // namespace

Collector::Collector(core::Simulator& sim, Network& net, int monitor_node, core::Duration cadence,
                     CollectorRetryPolicy retry)
    : sim_(sim),
      net_(net),
      monitor_node_(monitor_node),
      cadence_(cadence),
      retry_(retry),
      jitter_(retry.master_seed, "collector.retry") {
    validate_policy(cadence, retry);
}

void Collector::add_host(HostBinding binding, core::TimePoint first_sweep) {
    if (hosts_.contains(binding.host_id)) {
        throw core::InvalidArgument("Collector::add_host: duplicate host " +
                                    std::to_string(binding.host_id));
    }
    if (!binding.reachable || !binding.pending_bytes) {
        throw core::InvalidArgument("Collector::add_host: missing callbacks for host " +
                                    std::to_string(binding.host_id));
    }
    const int id = binding.host_id;
    const core::TimePoint start = first_sweep < sim_.now() ? sim_.now() : first_sweep;
    hosts_.emplace(id, HostState{std::move(binding), start, false, false});
    HostCollectionStats st;
    st.last_success = start;
    stats_.emplace(id, st);

    if (!sweep_scheduled_) {
        sweep_scheduled_ = true;
        sim_.schedule_every(start, cadence_, [this] { sweep(); }, "collector-sweep");
    }
}

void Collector::remove_host(int host_id) {
    const auto it = hosts_.find(host_id);
    if (it == hosts_.end()) {
        throw core::InvalidArgument("Collector::remove_host: unknown host " +
                                    std::to_string(host_id));
    }
    it->second.removed = true;
}

HostCollectionStats& Collector::stats_for(int host_id) {
    const auto it = stats_.find(host_id);
    if (it == stats_.end()) {
        // hosts_ and stats_ are inserted together; missing stats for a swept
        // host is a broken invariant, not a caller mistake.
        throw core::Error("Collector: no stats slot for host " + std::to_string(host_id),
                          core::ErrorCode::kUnknown);
    }
    return it->second;
}

bool Collector::attempt_host(int id, HostState& host, bool is_retry) {
    const core::TimePoint now = sim_.now();
    HostCollectionStats& st = stats_for(id);
    ++st.attempts;
    if (is_retry) ++st.retries;

    CollectionAttempt attempt;
    attempt.time = now;
    attempt.host_id = id;
    attempt.retry = is_retry;

    const bool path = net_.path_up(monitor_node_, id);
    const bool up = host.binding.reachable();
    if (path && up) {
        std::uint64_t pending = host.binding.pending_bytes(st.last_success);
        if (retry_.buffer_capacity_bytes > 0 && pending > retry_.buffer_capacity_bytes) {
            // The host's bounded result buffer overflowed during the gap and
            // overwrote its oldest entries; only the newest capacity-worth
            // survives to be collected.
            st.dropped_bytes += pending - retry_.buffer_capacity_bytes;
            pending = retry_.buffer_capacity_bytes;
        }
        attempt.ok = true;
        attempt.bytes = pending;
        ++st.successes;
        if (is_retry) ++st.retry_successes;
        st.bytes += pending;
        st.longest_gap = std::max(st.longest_gap, now - st.last_success);
        st.last_success = now;
        st.ever_succeeded = true;
    } else {
        ++st.failures;
        st.longest_gap = std::max(st.longest_gap, now - st.last_success);
    }
    log_.push_back(attempt);
    return attempt.ok;
}

void Collector::schedule_retry(int id, int attempt_no) {
    // Backoff for attempt k (k >= 2): base * factor^(k-2), capped, then
    // jittered by a factor in [1 - jitter_frac, 1 + jitter_frac].  The draw
    // happens at scheduling time, in event order, so a season replays the
    // exact same retry timeline for the same master seed.
    const double exponent = static_cast<double>(attempt_no - 2);
    const double scale = std::pow(retry_.backoff_factor, exponent);
    const double capped =
        std::min(static_cast<double>(retry_.base_backoff.count()) * scale,
                 static_cast<double>(retry_.max_backoff.count()));
    const double jitter = 1.0 + retry_.jitter_frac * (2.0 * jitter_.uniform01() - 1.0);
    const auto delay = core::Duration::seconds(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(capped * jitter)));

    const auto host_it = hosts_.find(id);
    if (host_it == hosts_.end()) {
        throw core::Error("Collector: retry scheduled for unknown host " + std::to_string(id),
                          core::ErrorCode::kUnknown);
    }
    host_it->second.retry_pending = true;
    sim_.schedule_in(delay, [this, id, attempt_no] {
        const auto it = hosts_.find(id);
        if (it == hosts_.end()) return;
        HostState& host = it->second;
        if (host.removed) {
            host.retry_pending = false;
            return;
        }
        const bool ok = attempt_host(id, host, /*is_retry=*/true);
        if (!ok && attempt_no < retry_.max_attempts) {
            schedule_retry(id, attempt_no + 1);
        } else {
            host.retry_pending = false;
        }
    }, "collector-retry");
}

void Collector::sweep() {
    const core::TimePoint now = sim_.now();
    for (auto& [id, host] : hosts_) {
        if (host.removed || host.installed > now) continue;
        // A backoff chain from the previous sweep is still probing this
        // host; let it finish rather than stacking a second chain.
        if (host.retry_pending) continue;
        const bool ok = attempt_host(id, host, /*is_retry=*/false);
        if (!ok && retry_.max_attempts > 1) schedule_retry(id, 2);
    }
}

const HostCollectionStats& Collector::stats(int host_id) const {
    const auto it = stats_.find(host_id);
    if (it == stats_.end()) {
        throw core::InvalidArgument("Collector::stats: unknown host " + std::to_string(host_id));
    }
    return it->second;
}

std::uint64_t Collector::total_failures() const {
    std::uint64_t n = 0;
    for (const auto& [id, st] : stats_) n += st.failures;
    return n;
}

std::uint64_t Collector::total_retries() const {
    std::uint64_t n = 0;
    for (const auto& [id, st] : stats_) n += st.retries;
    return n;
}

std::uint64_t Collector::total_dropped_bytes() const {
    std::uint64_t n = 0;
    for (const auto& [id, st] : stats_) n += st.dropped_bytes;
    return n;
}

}  // namespace zerodeg::monitoring
