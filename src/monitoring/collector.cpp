#include "monitoring/collector.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace zerodeg::monitoring {

Collector::Collector(core::Simulator& sim, Network& net, int monitor_node, core::Duration cadence)
    : sim_(sim), net_(net), monitor_node_(monitor_node), cadence_(cadence) {
    if (cadence.count() <= 0) throw core::InvalidArgument("Collector: bad cadence");
}

void Collector::add_host(HostBinding binding, core::TimePoint first_sweep) {
    if (hosts_.contains(binding.host_id)) {
        throw core::InvalidArgument("Collector::add_host: duplicate host");
    }
    if (!binding.reachable || !binding.pending_bytes) {
        throw core::InvalidArgument("Collector::add_host: missing callbacks");
    }
    const int id = binding.host_id;
    const core::TimePoint start = first_sweep < sim_.now() ? sim_.now() : first_sweep;
    hosts_.emplace(id, HostState{std::move(binding), start, false});
    HostCollectionStats st;
    st.last_success = start;
    stats_.emplace(id, st);

    if (!sweep_scheduled_) {
        sweep_scheduled_ = true;
        sim_.schedule_every(start, cadence_, [this] { sweep(); }, "collector-sweep");
    }
}

void Collector::remove_host(int host_id) {
    const auto it = hosts_.find(host_id);
    if (it == hosts_.end()) throw core::InvalidArgument("Collector::remove_host: unknown host");
    it->second.removed = true;
}

void Collector::sweep() {
    const core::TimePoint now = sim_.now();
    for (auto& [id, host] : hosts_) {
        if (host.removed || host.installed > now) continue;
        HostCollectionStats& st = stats_.at(id);
        ++st.attempts;

        CollectionAttempt attempt;
        attempt.time = now;
        attempt.host_id = id;

        const bool path = net_.path_up(monitor_node_, id);
        const bool up = host.binding.reachable();
        if (path && up) {
            attempt.ok = true;
            attempt.bytes = host.binding.pending_bytes(st.last_success);
            ++st.successes;
            st.bytes += attempt.bytes;
            st.longest_gap = std::max(st.longest_gap, now - st.last_success);
            st.last_success = now;
            st.ever_succeeded = true;
        } else {
            ++st.failures;
            st.longest_gap = std::max(st.longest_gap, now - st.last_success);
        }
        log_.push_back(attempt);
    }
}

const HostCollectionStats& Collector::stats(int host_id) const {
    const auto it = stats_.find(host_id);
    if (it == stats_.end()) throw core::InvalidArgument("Collector::stats: unknown host");
    return it->second;
}

std::uint64_t Collector::total_failures() const {
    std::uint64_t n = 0;
    for (const auto& [id, st] : stats_) n += st.failures;
    return n;
}

}  // namespace zerodeg::monitoring
