// The Lascar EL-USB-2-LCD data logger (Section 3.3).
//
// Datasheet error: +/-0.5 degC and +/-3.0% RH typical (+/-2 degC, +/-6% RH
// maximum).  The device is machine-readable "although only by manually
// inserting the device into an USB port" — each readout meant carrying it
// indoors, which polluted the record with warm-indoor outliers the authors
// then removed from the graphs.  Both the pollution and the removal are
// modeled (the filter lives in outlier_filter.hpp).
#pragma once

#include <vector>

#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "core/timeseries.hpp"
#include "core/units.hpp"
#include "thermal/enclosure.hpp"

namespace zerodeg::monitoring {

struct LascarConfig {
    core::Celsius temp_sigma{0.25};   ///< noise giving ~+/-0.5 degC typical
    double rh_sigma = 1.5;            ///< noise giving ~+/-3% RH typical
    core::Duration cadence = core::Duration::minutes(10);
    /// Indoor conditions recorded while the logger rides to the office.
    core::Celsius indoor_temp{21.5};
    core::RelHumidity indoor_rh{30.0};
};

/// A USB readout trip: between [start, start+duration] the logger sees the
/// office, not the tent.
struct ReadoutTrip {
    core::TimePoint start;
    core::Duration duration = core::Duration::minutes(25);

    [[nodiscard]] bool covers(core::TimePoint t) const {
        return t >= start && t <= start + duration;
    }
};

class LascarLogger {
public:
    /// Starts sampling `enclosure` at `first_sample` (the paper's logger
    /// "arrived late": start it after the experiment begins and the early
    /// inside data is simply missing, as in Figs. 3-4).
    LascarLogger(core::Simulator& sim, const thermal::Enclosure& enclosure,
                 core::TimePoint first_sample, LascarConfig config, core::RngStream rng);

    /// Register a manual USB readout (data carried indoors).
    void schedule_readout(ReadoutTrip trip);

    [[nodiscard]] const core::TimeSeries& temperature_series() const { return temperature_; }
    [[nodiscard]] const core::TimeSeries& humidity_series() const { return humidity_; }
    [[nodiscard]] const std::vector<ReadoutTrip>& readouts() const { return readouts_; }
    [[nodiscard]] core::TimePoint first_sample_time() const { return first_sample_; }

private:
    core::Simulator& sim_;
    const thermal::Enclosure& enclosure_;
    LascarConfig config_;
    core::RngStream rng_;
    core::TimePoint first_sample_;
    core::TimeSeries temperature_{"tent_temp_degC"};
    core::TimeSeries humidity_{"tent_rh_pct"};
    std::vector<ReadoutTrip> readouts_;

    void take_sample();
};

}  // namespace zerodeg::monitoring
