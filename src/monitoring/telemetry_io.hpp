// Durable export of the monitoring host's collection telemetry.
//
// The Collector itself is an in-simulation model (sweeps, retries, the
// bounded store-and-forward buffer); what survives a run on disk is this
// CSV: one row per monitored host with the full retry/gap/dropped-bytes
// accounting, followed by the attempt log.  Like every durable writer it
// goes through the core::io FileSystem seam — never a raw ofstream — so the
// torture harness can crash or fault-inject the write and the bounded retry
// keeps the dropped-byte accounting honest.
#pragma once

#include <filesystem>
#include <string>

#include "core/io.hpp"
#include "monitoring/collector.hpp"

namespace zerodeg::monitoring {

/// The collection telemetry of a finished run as CSV text: a per-host stats
/// section ordered by host id, then the chronological attempt log.  A pure
/// render — byte-identical for identical runs, no I/O.
[[nodiscard]] std::string render_collection_csv(const Collector& collector);

/// Persist render_collection_csv() to `path` through `fs`, absorbing
/// transient write faults up to `retry`.  Returns the retries absorbed;
/// throws core::Error (IoError/TransientError) with a "collection telemetry"
/// context frame when the budget is exhausted.
int write_collection_csv(core::FileSystem& fs, const std::filesystem::path& path,
                         const Collector& collector, core::IoRetryPolicy retry = {});

}  // namespace zerodeg::monitoring
