// Worker/coordinator sweeps over the transport seam: lease scheduling,
// offline degradation, convergence to byte-identical output for any worker
// count and any FaultyTransport seed, op-counted lease expiry, zombie
// re-admission, poison-cell quarantine, and the cross-process crash torture
// (kill the worker at every send — transiently and permanently — and the
// coordinator at every frame, resume, compare).
#include "experiment/distributed.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/transport.hpp"
#include "experiment/shard_protocol.hpp"
#include "experiment/sweep_journal.hpp"
#include "experiment/torture.hpp"
#include "monitoring/netsim.hpp"

namespace zerodeg::experiment {
namespace {

namespace fs = std::filesystem;

CensusPlan synthetic_plan(std::size_t seeds, std::uint64_t base_seed = 42) {
    CensusPlan plan;
    plan.base_seed = base_seed;
    plan.seeds = seeds;
    plan.run_cell = [](const ExperimentConfig& cfg) { return synthetic_census(cfg); };
    return plan;
}

fs::path scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("distributed_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string local_reference_render(const CensusPlan& plan) {
    return render_census_table(run_census(plan, 1), plan.base_seed);
}

TEST(ShardCells, RoundRobinPartitionIsDisjointAndComplete) {
    std::vector<bool> seen(10, false);
    for (std::size_t w = 0; w < 3; ++w) {
        for (std::size_t idx : shard_cells(10, ShardSpec{w, 3})) {
            ASSERT_LT(idx, 10u);
            EXPECT_FALSE(seen[idx]) << "cell " << idx << " owned twice";
            seen[idx] = true;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_TRUE(seen[i]) << "cell " << i << " unowned";
    }
    EXPECT_THROW((void)shard_cells(10, ShardSpec{3, 3}), core::InvalidArgument);
    EXPECT_THROW((void)shard_cells(10, ShardSpec{0, 0}), core::InvalidArgument);
}

TEST(RunWorker, OfflineModeJournalsLocallyAndResumes) {
    const CensusPlan plan = synthetic_plan(5);
    const fs::path dir = scratch_dir("offline");

    const WorkerReport first =
        run_worker(plan, ShardSpec{0, 2}, worker_journal_path(dir, 0), nullptr);
    EXPECT_EQ(first.cells_owned, 3u);  // cells 0, 2, 4
    EXPECT_EQ(first.cells_computed, 3u);
    EXPECT_EQ(first.buffered, 3u);
    EXPECT_GT(first.buffered_bytes, 0u);
    EXPECT_TRUE(first.degraded);
    EXPECT_FALSE(first.coordinator_reached);

    // A re-run finds every cell in the local journal: durable before wire.
    const WorkerReport second =
        run_worker(plan, ShardSpec{0, 2}, worker_journal_path(dir, 0), nullptr);
    EXPECT_EQ(second.cells_reused, 3u);
    EXPECT_EQ(second.cells_computed, 0u);
}

TEST(RunDistributed, MatchesTheLocalRunByteForByte) {
    const CensusPlan plan = synthetic_plan(5);
    const fs::path dir = scratch_dir("matches_local");

    DistributedOptions opts;
    opts.workers = 2;
    const DistributedOutcome out = run_distributed(plan, dir, opts);

    EXPECT_TRUE(out.coordinator.completed);
    EXPECT_EQ(out.coordinator.cells_recorded, 5u);
    EXPECT_EQ(out.coordinator.links_accepted, 2u);
    EXPECT_FALSE(out.coordinator_crashed);
    for (const WorkerReport& w : out.workers) {
        EXPECT_TRUE(w.coordinator_reached);
        EXPECT_FALSE(w.degraded);
        EXPECT_EQ(w.buffered, 0u);
    }
    EXPECT_EQ(render_census_table(out.result, plan.base_seed), local_reference_render(plan));

    // The merged journal is byte-identical to a local journaled campaign.
    const fs::path ref = dir / "local-reference.journal";
    const ParallelCensus census(plan, 1);
    SweepJournal journal(ref, census.journal_key(), false);
    (void)census.run(journal);
    EXPECT_EQ(slurp(merged_journal_path(dir)), slurp(ref));
}

TEST(RunDistributed, WorkerCountIsInvisibleInTheOutput) {
    const CensusPlan plan = synthetic_plan(7);
    const std::string reference = local_reference_render(plan);
    for (std::size_t workers : {1u, 2u, 3u}) {
        const fs::path dir = scratch_dir("workers_" + std::to_string(workers));
        DistributedOptions opts;
        opts.workers = workers;
        const DistributedOutcome out = run_distributed(plan, dir, opts);
        ASSERT_TRUE(out.coordinator.completed) << workers << " workers";
        EXPECT_EQ(render_census_table(out.result, plan.base_seed), reference)
            << workers << " workers";
    }
}

TEST(RunDistributed, LossyLinksConvergeViaResendAndDedupe) {
    const CensusPlan plan = synthetic_plan(6);
    const std::string reference = local_reference_render(plan);
    // Several fault seeds, all lossy in every way at once: drops charge the
    // resend budget, duplicates exercise coordinator dedupe, reorders and
    // dropped acks force replays.  The output must never notice.
    for (const std::uint64_t seed : {7u, 19u, 1001u}) {
        const fs::path dir = scratch_dir("lossy_" + std::to_string(seed));
        DistributedOptions opts;
        opts.workers = 2;
        opts.retry.max_attempts = 8;
        opts.ack_timeout_ms = 100;  // dropped acks should charge resends fast
        core::TransportFaultPlan faults;
        faults.seed = seed;
        faults.drop_rate = 0.15;
        faults.dup_rate = 0.15;
        faults.reorder_rate = 0.1;
        faults.ack_drop_rate = 0.1;
        opts.worker_faults.assign(opts.workers, faults);
        const DistributedOutcome out = run_distributed(plan, dir, opts);
        ASSERT_TRUE(out.coordinator.completed) << "seed " << seed;
        EXPECT_EQ(render_census_table(out.result, plan.base_seed), reference)
            << "seed " << seed;
        const std::size_t churn = out.coordinator.duplicates + out.workers[0].drops_absorbed +
                                  out.workers[0].resends + out.workers[1].drops_absorbed +
                                  out.workers[1].resends;
        EXPECT_GT(churn, 0u) << "seed " << seed << ": the fault plan injected nothing";
    }
}

TEST(RunDistributed, DisconnectedWorkerReconnectsAndFinishes) {
    const CensusPlan plan = synthetic_plan(6);
    const fs::path dir = scratch_dir("reconnect");
    DistributedOptions opts;
    opts.workers = 2;
    core::TransportFaultPlan faults;
    faults.seed = 5;
    faults.disconnect_rate = 0.35;  // the first link will not survive
    opts.worker_faults = {faults};  // worker 1 keeps a clean link
    const DistributedOutcome out = run_distributed(plan, dir, opts);
    ASSERT_TRUE(out.coordinator.completed);
    EXPECT_EQ(render_census_table(out.result, plan.base_seed), local_reference_render(plan));
    EXPECT_GT(out.workers[0].reconnects, 0);
    EXPECT_GT(out.coordinator.links_accepted, 2u);  // the re-dial shows up
}

TEST(RunDistributed, ZeroRetryPolicyConvergesViaLeaseRegrant) {
    const CensusPlan plan = synthetic_plan(6);
    const fs::path dir = scratch_dir("zero_retry");
    DistributedOptions opts;
    opts.workers = 1;
    opts.retry.max_attempts = 1;  // the paper's collector: one attempt, no retry
    opts.ack_timeout_ms = 100;
    core::TransportFaultPlan faults;
    faults.seed = 3;
    faults.drop_rate = 0.4;
    opts.worker_faults = {faults};
    const DistributedOutcome out = run_distributed(plan, dir, opts);
    // No frame is ever resent within one delivery attempt (max_attempts 1),
    // yet nothing is lost: the worker's next pull makes the coordinator
    // re-announce the incomplete lease, and the locally journaled cells
    // stream again until acked.  The campaign converges anyway.
    ASSERT_TRUE(out.coordinator.completed);
    EXPECT_EQ(out.workers[0].resends, 0u);
    EXPECT_GT(out.workers[0].drops_absorbed, 0u);
    EXPECT_FALSE(out.workers[0].degraded);
    EXPECT_EQ(render_census_table(out.result, plan.base_seed), local_reference_render(plan));
}

TEST(RunDistributed, PermanentWorkerDeathIsAbsorbedBySurvivors) {
    const CensusPlan plan = synthetic_plan(6);
    const fs::path dir = scratch_dir("permadeath");
    DistributedOptions opts;
    opts.workers = 2;
    opts.restart_crashed_workers = false;  // nobody reboots this node
    opts.worker_faults.assign(2, core::TransportFaultPlan{});
    opts.worker_faults[1].crash_at_send = 4;  // mid-lease, after some chatter
    opts.worker_faults[1].crash_phase = core::NetCrashPhase::kBeforeOp;
    const DistributedOutcome out = run_distributed(plan, dir, opts);
    // The survivor absorbs the dead worker's lease; output does not move.
    ASSERT_TRUE(out.coordinator.completed);
    EXPECT_EQ(render_census_table(out.result, plan.base_seed), local_reference_render(plan));
    if (out.worker_crashed[1]) {
        EXPECT_GE(out.coordinator.links_dropped, 1u);
        EXPECT_GE(out.coordinator.leases_expired, 0u);
    }
}

TEST(RunDistributed, PoisonCellIsQuarantinedAfterMaxLeaseAttempts) {
    CensusPlan plan = synthetic_plan(4);
    const std::size_t poison = 3;
    plan.run_cell = [poison, base = plan.base_seed](const ExperimentConfig& cfg) -> FaultCensus {
        if (cfg.master_seed == base + poison) throw core::SimulatedCrash("poison cell");
        return synthetic_census(cfg);
    };
    const fs::path dir = scratch_dir("poison");
    DistributedOptions opts;
    opts.workers = 2;
    opts.lease_chunk = 1;  // the poison cell shares its lease with nobody
    opts.restart_crashed_workers = true;
    opts.max_lease_attempts = 3;
    const DistributedOutcome out = run_distributed(plan, dir, opts);
    // Three distinct workers died on cell 3; it is quarantined, the campaign
    // resolves (no wedge) but is NOT complete — the table would have a hole.
    EXPECT_TRUE(out.coordinator.resolved);
    EXPECT_FALSE(out.coordinator.completed);
    EXPECT_EQ(out.coordinator.quarantined, 1u);
    EXPECT_GE(out.coordinator.leases_expired, 3u);
}

TEST(CoordinatorService, HeartbeatsKeepAnIdleCoordinatorAlive) {
    const CensusPlan plan = synthetic_plan(3);
    const fs::path dir = scratch_dir("idle_reset");
    CoordinatorOptions copts;
    copts.idle_give_up_polls = 200;  // ~200ms of true silence
    CoordinatorService service(plan, merged_journal_path(dir), copts);
    core::LoopbackListener listener;
    CoordinatorReport report;
    std::thread coordinator([&] {
        report = service.serve(listener);
        listener.close();
    });

    const std::unique_ptr<core::Transport> link = listener.connect();
    link->send(encode_hello(ShardHello{service.key(), 0, 0}));
    std::string bytes;
    ASSERT_TRUE(link->recv_wait(bytes, 5000));
    ASSERT_EQ(decode_frame(bytes).type, FrameType::kWelcome);

    // Stay quiet longer than the idle budget in *total*, but heartbeat
    // within it each time: ANY valid frame must reset the budget, so a
    // slow-simulating but heartbeating worker keeps the coordinator alive.
    for (int i = 0; i < 6; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        link->send(encode_heartbeat(999));  // in-lease-shaped liveness
    }
    // Still serving: a pull is answered with a lease grant.
    link->send(encode_heartbeat(kNoLease));
    Frame frame;
    for (;;) {
        ASSERT_TRUE(link->recv_wait(bytes, 5000));
        frame = decode_frame(bytes);
        if (frame.type == FrameType::kLease) break;
    }
    EXPECT_FALSE(frame.lease.cells.empty());

    // Now go silent for good: the idle budget finally runs out (the lease
    // deadline cannot fire — no frames arrive, so the op clock is frozen).
    coordinator.join();
    EXPECT_FALSE(report.resolved);
    EXPECT_GE(report.heartbeats, 7u);
}

TEST(CoordinatorService, OpCountedDeadlineExpiresSilentLeaseHolder) {
    const CensusPlan plan = synthetic_plan(4);
    const fs::path dir = scratch_dir("lease_expiry");
    CoordinatorOptions copts;
    copts.lease_chunk = 2;
    copts.lease_deadline_ops = 4;  // a few frames of silence = declared dead
    CoordinatorService service(plan, merged_journal_path(dir), copts);
    core::LoopbackListener listener;
    CoordinatorReport report;
    std::thread coordinator([&] {
        report = service.serve(listener);
        listener.close();
    });

    const std::string hello = encode_hello(ShardHello{service.key(), 0, 0});
    const std::unique_ptr<core::Transport> a = listener.connect();
    a->send(hello);
    std::string bytes;
    ASSERT_TRUE(a->recv_wait(bytes, 5000));
    ASSERT_EQ(decode_frame(bytes).type, FrameType::kWelcome);
    a->send(encode_heartbeat(kNoLease));
    ASSERT_TRUE(a->recv_wait(bytes, 5000));
    const Frame granted = decode_frame(bytes);
    ASSERT_EQ(granted.type, FrameType::kLease);

    // A goes silent while B's chatter advances the op clock past A's
    // deadline: the coordinator declares A permanently dead and closes it.
    const std::unique_ptr<core::Transport> b = listener.connect();
    b->send(hello);
    ASSERT_TRUE(b->recv_wait(bytes, 5000));
    for (int i = 0; i < 8; ++i) b->send(encode_heartbeat(999));
    bool a_dropped = false;
    try {
        while (a->recv_wait(bytes, 5000)) {
        }
    } catch (const core::TransportClosed&) {
        a_dropped = true;
    }
    EXPECT_TRUE(a_dropped);

    // B's next pull is granted the dead worker's exact cells.
    b->send(encode_heartbeat(kNoLease));
    Frame regrant;
    for (;;) {
        ASSERT_TRUE(b->recv_wait(bytes, 5000));
        regrant = decode_frame(bytes);
        if (regrant.type == FrameType::kLease) break;
    }
    EXPECT_EQ(regrant.lease.cells, granted.lease.cells);
    EXPECT_GT(regrant.lease.id, granted.lease.id);

    service.request_stop();
    b->close();
    coordinator.join();
    // A's deadline expiry, plus possibly B's own lease failing when the
    // test hangs up on it above.
    EXPECT_GE(report.leases_expired, 1u);
    EXPECT_GE(report.links_dropped, 1u);
    EXPECT_GE(report.leases_granted, 2u);
}

TEST(RunWorker, ZombieWorkerIsReadmittedAndDeduped) {
    const CensusPlan plan = synthetic_plan(6);
    const fs::path dir = scratch_dir("zombie");
    // The zombie's past life: an offline compat run buffered shard {1,3,5}.
    const fs::path zjournal = worker_journal_path(dir, 1);
    const WorkerReport offline = run_worker(plan, ShardSpec{1, 2}, zjournal, nullptr);
    ASSERT_TRUE(offline.degraded);
    // Meanwhile the coordinator merged those same cells from other workers.
    const SweepJournalKey key = ParallelCensus(plan, 1).journal_key();
    {
        SweepJournal merged(merged_journal_path(dir), key, false);
        for (const std::size_t idx : std::vector<std::size_t>{1, 3, 5}) {
            merged.record(idx, run_cell(plan, cell_config(plan, idx)));
        }
    }
    CoordinatorOptions copts;
    copts.resume = true;
    CoordinatorService service(plan, merged_journal_path(dir), copts);
    core::LoopbackListener listener;
    CoordinatorReport creport;
    std::thread coordinator([&] {
        creport = service.serve(listener);
        listener.close();
    });

    // The zombie reconnects: every stale cell it streams is absorbed by
    // dedupe, and it is handed a fresh lease over the remaining half of the
    // campaign instead of being turned away.
    const WorkerReport zombie = run_worker(plan, ShardSpec{1, 2}, zjournal, listener.connect());
    coordinator.join();

    EXPECT_TRUE(zombie.done_received);
    EXPECT_FALSE(zombie.degraded);
    EXPECT_GE(zombie.leases_held, 1u);
    EXPECT_EQ(zombie.cells_computed, 3u);  // the fresh lease: cells 0, 2, 4
    EXPECT_EQ(creport.duplicates, 3u);     // the stale shard, deduped
    EXPECT_EQ(creport.cells_recorded, 3u);
    EXPECT_TRUE(creport.completed);

    // Byte-identity: the merged journal cannot tell any of this happened.
    const fs::path ref = dir / "ref.journal";
    {
        SweepJournal journal(ref, key, false);
        (void)ParallelCensus(plan, 1).run(journal);
    }
    EXPECT_EQ(slurp(merged_journal_path(dir)), slurp(ref));
}

// Steps the simulated network to the tent switch's death just before the
// Nth send — from the worker's own thread, so the (not thread-safe) Network
// is never touched concurrently: the coordinator holds raw loopback ends.
class SwitchKiller final : public core::Transport {
  public:
    SwitchKiller(std::unique_ptr<core::Transport> inner, monitoring::Network& net,
                 std::size_t doomed, int death_send)
        : inner_(std::move(inner)), net_(net), doomed_(doomed), death_send_(death_send) {}
    void send(std::string_view frame) override {
        if (++sends_ == death_send_) {
            while (net_.switch_at(doomed_).operational()) {
                net_.step(core::Duration::hours(1));
            }
        }
        inner_->send(frame);
    }
    bool try_recv(std::string& frame) override { return inner_->try_recv(frame); }
    bool recv_wait(std::string& frame, int timeout_ms) override {
        return inner_->recv_wait(frame, timeout_ms);
    }
    void close() override { inner_->close(); }
    [[nodiscard]] bool closed() const override { return inner_->closed(); }

  private:
    std::unique_ptr<core::Transport> inner_;
    monitoring::Network& net_;
    std::size_t doomed_;
    int death_send_;
    int sends_ = 0;
};

// The paper's observed failure mode, end to end: a loaner switch dies in the
// collection path, the worker behind it goes dark mid-lease, and a healthy
// worker on another tent absorbs the orphaned cells.  The merged journal is
// byte-identical to a local run.
TEST(RunWorker, DeadSwitchOrphansLeaseAndASurvivorAbsorbsIt) {
    const CensusPlan plan = synthetic_plan(6);
    const fs::path dir = scratch_dir("dead_switch");

    monitoring::Network net;
    const std::size_t root = net.add_switch(
        hardware::NetworkSwitch("building", hardware::SwitchConfig{}, core::RngStream(1, "b")));
    hardware::SwitchConfig doomed_cfg;
    doomed_cfg.inherent_defect = true;
    doomed_cfg.defect_mean_hours_to_failure = 100.0;
    const std::size_t tent =
        net.add_switch(hardware::NetworkSwitch("tent", doomed_cfg, core::RngStream(5, "t")));
    net.uplink(tent, root);
    net.attach({100, "coordinator"}, root);
    net.attach({1, "worker-a"}, tent);

    CoordinatorOptions copts;
    copts.lease_chunk = 2;
    CoordinatorService service(plan, merged_journal_path(dir), copts);
    core::LoopbackListener listener;
    CoordinatorReport creport;
    std::thread coordinator([&] {
        creport = service.serve(listener);
        listener.close();
    });

    // Worker A, behind the doomed tent switch: hello, pull, lease, then the
    // switch dies under it mid-lease.  No reconnect path exists.
    WorkerOptions aopts;
    aopts.max_reconnects = 0;
    auto gated = std::make_unique<monitoring::NetworkGatedTransport>(net, 1, 100,
                                                                     listener.connect());
    const WorkerReport a = run_worker(
        plan, ShardSpec{0, 0}, worker_journal_path(dir, 0),
        std::make_unique<SwitchKiller>(std::move(gated), net, tent, 5), aopts);
    EXPECT_TRUE(a.degraded);
    EXPECT_FALSE(a.done_received);
    EXPECT_GE(a.leases_held, 1u);

    // Worker B, on a healthy path, finishes the whole campaign — including
    // the cells A's orphaned lease still names.
    const WorkerReport b =
        run_worker(plan, ShardSpec{1, 0}, worker_journal_path(dir, 1), listener.connect());
    coordinator.join();

    EXPECT_TRUE(b.done_received);
    EXPECT_TRUE(creport.completed);
    EXPECT_GE(creport.links_dropped, 1u);
    EXPECT_GE(creport.leases_expired, 1u);

    const SweepJournalKey key = ParallelCensus(plan, 1).journal_key();
    const fs::path ref = dir / "ref.journal";
    {
        SweepJournal journal(ref, key, false);
        (void)ParallelCensus(plan, 1).run(journal);
    }
    EXPECT_EQ(slurp(merged_journal_path(dir)), slurp(ref));
}

TEST(RunDistributed, ForeignCampaignHelloIsRejectedAsStale) {
    const CensusPlan coordinator_plan = synthetic_plan(4, 42);
    const CensusPlan worker_plan = synthetic_plan(4, 43);  // different campaign
    const fs::path dir = scratch_dir("stale");

    CoordinatorOptions copts;
    CoordinatorService service(coordinator_plan, merged_journal_path(dir), copts);
    core::LoopbackListener listener;
    std::thread coordinator([&] {
        try {
            (void)service.serve(listener);
        } catch (...) {
        }
        listener.close();
    });

    EXPECT_THROW((void)run_worker(worker_plan, ShardSpec{0, 1}, worker_journal_path(dir, 0),
                                  listener.connect()),
                 core::StaleJournal);
    service.request_stop();
    coordinator.join();
}

// The headline property: kill the worker at every send point — transiently
// (the operator reboots it) AND permanently (the survivors absorb its lease)
// — and the coordinator at every frame (every phase), resume, and the merged
// campaign is byte-identical to the uninterrupted run; plus the poison-cell
// scenario, where quarantine must engage.
TEST(DistributedTorture, EveryCrashPointResumesByteIdentically) {
    const CensusPlan plan = synthetic_plan(4);
    const fs::path dir = scratch_dir("torture");
    std::ostringstream log;
    DistributedTortureOptions opts;
    opts.workers = 2;
    const DistributedTortureReport report = distributed_torture(plan, dir, opts, log);
    EXPECT_TRUE(report.passed()) << log.str();
    EXPECT_EQ(report.mismatches, 0u) << log.str();
    // Lease chatter makes the exact counts interleaving-dependent; the
    // floors are what a minimal 2-worker 4-cell campaign must produce, and
    // the matrix sizes must follow the counting run exactly.
    EXPECT_GE(report.worker_send_points, 6u) << log.str();
    EXPECT_GE(report.coordinator_frames, 6u) << log.str();
    EXPECT_EQ(report.crash_points,
              4 * report.worker_send_points + 3 * report.coordinator_frames)
        << log.str();
    EXPECT_GT(report.permanent_kills, 0u) << log.str();
    EXPECT_EQ(report.quarantine_checks, 1u) << log.str();
}

}  // namespace
}  // namespace zerodeg::experiment
