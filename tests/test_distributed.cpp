// Worker/coordinator sweeps over the transport seam: sharding, offline
// degradation, convergence to byte-identical output for any worker count and
// any FaultyTransport seed, and the cross-process crash torture (kill the
// worker at every send, the coordinator at every frame, resume, compare).
#include "experiment/distributed.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/transport.hpp"
#include "experiment/sweep_journal.hpp"
#include "experiment/torture.hpp"

namespace zerodeg::experiment {
namespace {

namespace fs = std::filesystem;

CensusPlan synthetic_plan(std::size_t seeds, std::uint64_t base_seed = 42) {
    CensusPlan plan;
    plan.base_seed = base_seed;
    plan.seeds = seeds;
    plan.run_cell = [](const ExperimentConfig& cfg) { return synthetic_census(cfg); };
    return plan;
}

fs::path scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("distributed_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string local_reference_render(const CensusPlan& plan) {
    return render_census_table(run_census(plan, 1), plan.base_seed);
}

TEST(ShardCells, RoundRobinPartitionIsDisjointAndComplete) {
    std::vector<bool> seen(10, false);
    for (std::size_t w = 0; w < 3; ++w) {
        for (std::size_t idx : shard_cells(10, ShardSpec{w, 3})) {
            ASSERT_LT(idx, 10u);
            EXPECT_FALSE(seen[idx]) << "cell " << idx << " owned twice";
            seen[idx] = true;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_TRUE(seen[i]) << "cell " << i << " unowned";
    }
    EXPECT_THROW((void)shard_cells(10, ShardSpec{3, 3}), core::InvalidArgument);
    EXPECT_THROW((void)shard_cells(10, ShardSpec{0, 0}), core::InvalidArgument);
}

TEST(RunWorker, OfflineModeJournalsLocallyAndResumes) {
    const CensusPlan plan = synthetic_plan(5);
    const fs::path dir = scratch_dir("offline");

    const WorkerReport first =
        run_worker(plan, ShardSpec{0, 2}, worker_journal_path(dir, 0), nullptr);
    EXPECT_EQ(first.cells_owned, 3u);  // cells 0, 2, 4
    EXPECT_EQ(first.cells_computed, 3u);
    EXPECT_EQ(first.buffered, 3u);
    EXPECT_GT(first.buffered_bytes, 0u);
    EXPECT_TRUE(first.degraded);
    EXPECT_FALSE(first.coordinator_reached);

    // A re-run finds every cell in the local journal: durable before wire.
    const WorkerReport second =
        run_worker(plan, ShardSpec{0, 2}, worker_journal_path(dir, 0), nullptr);
    EXPECT_EQ(second.cells_reused, 3u);
    EXPECT_EQ(second.cells_computed, 0u);
}

TEST(RunDistributed, MatchesTheLocalRunByteForByte) {
    const CensusPlan plan = synthetic_plan(5);
    const fs::path dir = scratch_dir("matches_local");

    DistributedOptions opts;
    opts.workers = 2;
    const DistributedOutcome out = run_distributed(plan, dir, opts);

    EXPECT_TRUE(out.coordinator.completed);
    EXPECT_EQ(out.coordinator.cells_recorded, 5u);
    EXPECT_EQ(out.coordinator.links_accepted, 2u);
    EXPECT_FALSE(out.coordinator_crashed);
    for (const WorkerReport& w : out.workers) {
        EXPECT_TRUE(w.coordinator_reached);
        EXPECT_FALSE(w.degraded);
        EXPECT_EQ(w.buffered, 0u);
    }
    EXPECT_EQ(render_census_table(out.result, plan.base_seed), local_reference_render(plan));

    // The merged journal is byte-identical to a local journaled campaign.
    const fs::path ref = dir / "local-reference.journal";
    const ParallelCensus census(plan, 1);
    SweepJournal journal(ref, census.journal_key(), false);
    (void)census.run(journal);
    EXPECT_EQ(slurp(merged_journal_path(dir)), slurp(ref));
}

TEST(RunDistributed, WorkerCountIsInvisibleInTheOutput) {
    const CensusPlan plan = synthetic_plan(7);
    const std::string reference = local_reference_render(plan);
    for (std::size_t workers : {1u, 2u, 3u}) {
        const fs::path dir = scratch_dir("workers_" + std::to_string(workers));
        DistributedOptions opts;
        opts.workers = workers;
        const DistributedOutcome out = run_distributed(plan, dir, opts);
        ASSERT_TRUE(out.coordinator.completed) << workers << " workers";
        EXPECT_EQ(render_census_table(out.result, plan.base_seed), reference)
            << workers << " workers";
    }
}

TEST(RunDistributed, LossyLinksConvergeViaResendAndDedupe) {
    const CensusPlan plan = synthetic_plan(6);
    const std::string reference = local_reference_render(plan);
    // Several fault seeds, all lossy in every way at once: drops charge the
    // resend budget, duplicates exercise coordinator dedupe, reorders and
    // dropped acks force replays.  The output must never notice.
    for (const std::uint64_t seed : {7u, 19u, 1001u}) {
        const fs::path dir = scratch_dir("lossy_" + std::to_string(seed));
        DistributedOptions opts;
        opts.workers = 2;
        opts.retry.max_attempts = 8;
        opts.ack_timeout_ms = 100;  // dropped acks should charge resends fast
        core::TransportFaultPlan faults;
        faults.seed = seed;
        faults.drop_rate = 0.15;
        faults.dup_rate = 0.15;
        faults.reorder_rate = 0.1;
        faults.ack_drop_rate = 0.1;
        opts.worker_faults.assign(opts.workers, faults);
        const DistributedOutcome out = run_distributed(plan, dir, opts);
        ASSERT_TRUE(out.coordinator.completed) << "seed " << seed;
        EXPECT_EQ(render_census_table(out.result, plan.base_seed), reference)
            << "seed " << seed;
        const std::size_t churn = out.coordinator.duplicates + out.workers[0].drops_absorbed +
                                  out.workers[0].resends + out.workers[1].drops_absorbed +
                                  out.workers[1].resends;
        EXPECT_GT(churn, 0u) << "seed " << seed << ": the fault plan injected nothing";
    }
}

TEST(RunDistributed, DisconnectedWorkerReconnectsAndFinishes) {
    const CensusPlan plan = synthetic_plan(6);
    const fs::path dir = scratch_dir("reconnect");
    DistributedOptions opts;
    opts.workers = 2;
    core::TransportFaultPlan faults;
    faults.seed = 5;
    faults.disconnect_rate = 0.35;  // the first link will not survive
    opts.worker_faults = {faults};  // worker 1 keeps a clean link
    const DistributedOutcome out = run_distributed(plan, dir, opts);
    ASSERT_TRUE(out.coordinator.completed);
    EXPECT_EQ(render_census_table(out.result, plan.base_seed), local_reference_render(plan));
    EXPECT_GT(out.workers[0].reconnects, 0);
    EXPECT_GT(out.coordinator.links_accepted, 2u);  // the re-dial shows up
}

TEST(RunDistributed, ZeroRetryPolicyBuffersOnFirstLoss) {
    const CensusPlan plan = synthetic_plan(6);
    const fs::path dir = scratch_dir("zero_retry");
    DistributedOptions opts;
    opts.workers = 1;
    opts.retry.max_attempts = 1;  // the paper's collector: one attempt, no retry
    core::TransportFaultPlan faults;
    faults.seed = 3;
    faults.drop_rate = 0.4;
    opts.worker_faults = {faults};
    const DistributedOutcome out = run_distributed(plan, dir, opts);
    // Some cells were swallowed and never resent — but none were lost: every
    // one is in the worker's local journal, reported as buffered.
    EXPECT_FALSE(out.coordinator.completed);
    EXPECT_GT(out.workers[0].buffered, 0u);
    EXPECT_TRUE(out.workers[0].degraded);
    EXPECT_EQ(out.workers[0].resends, 0u);

    // A later clean re-run (the coordinator came back) drains the buffer.
    DistributedOptions clean;
    clean.workers = 1;
    const DistributedOutcome drained = run_distributed(plan, dir, clean);
    ASSERT_TRUE(drained.coordinator.completed);
    EXPECT_EQ(drained.workers[0].cells_computed, 0u);  // nothing re-simulated
    EXPECT_EQ(render_census_table(drained.result, plan.base_seed), local_reference_render(plan));
}

TEST(RunDistributed, ForeignCampaignHelloIsRejectedAsStale) {
    const CensusPlan coordinator_plan = synthetic_plan(4, 42);
    const CensusPlan worker_plan = synthetic_plan(4, 43);  // different campaign
    const fs::path dir = scratch_dir("stale");

    CoordinatorOptions copts;
    CoordinatorService service(coordinator_plan, merged_journal_path(dir), copts);
    core::LoopbackListener listener;
    std::thread coordinator([&] {
        try {
            (void)service.serve(listener);
        } catch (...) {
        }
        listener.close();
    });

    EXPECT_THROW((void)run_worker(worker_plan, ShardSpec{0, 1}, worker_journal_path(dir, 0),
                                  listener.connect()),
                 core::StaleJournal);
    service.request_stop();
    coordinator.join();
}

// The headline property: kill the worker at every send point and the
// coordinator at every frame (every phase), resume, and the merged campaign
// is byte-identical to the uninterrupted run.
TEST(DistributedTorture, EveryCrashPointResumesByteIdentically) {
    const CensusPlan plan = synthetic_plan(4);
    const fs::path dir = scratch_dir("torture");
    std::ostringstream log;
    DistributedTortureOptions opts;
    opts.workers = 2;
    const DistributedTortureReport report = distributed_torture(plan, dir, opts, log);
    EXPECT_TRUE(report.passed()) << log.str();
    EXPECT_EQ(report.mismatches, 0u) << log.str();
    // 2 workers x (1 hello + 2 cells) sends, and 2 hellos + 4 cells frames.
    EXPECT_EQ(report.worker_send_points, 6u) << log.str();
    EXPECT_EQ(report.coordinator_frames, 6u) << log.str();
    EXPECT_EQ(report.crash_points, 2 * 6 + 3 * 6) << log.str();
}

}  // namespace
}  // namespace zerodeg::experiment
