#include "thermal/enclosure.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "weather/weather_model.hpp"

namespace zerodeg::thermal {
namespace {

using core::Celsius;
using core::Duration;
using core::MetersPerSecond;
using core::RelHumidity;
using core::Watts;
using core::WattsPerSquareMeter;

weather::WeatherSample still_night(double temp_c, double rh = 80.0) {
    weather::WeatherSample s;
    s.temperature = Celsius{temp_c};
    s.humidity = RelHumidity{rh};
    s.wind = MetersPerSecond{0.0};
    s.irradiance = WattsPerSquareMeter{0.0};
    return s;
}

TentModel settled_tent(const weather::WeatherSample& outside, Watts power,
                       std::initializer_list<TentMod> mods = {}) {
    TentModel tent(TentConfig{}, outside.temperature);
    for (const TentMod m : mods) tent.apply_modification(m);
    tent.set_equipment_power(power);
    for (int i = 0; i < 12 * 24; ++i) tent.step(Duration::minutes(10), outside);
    return tent;
}

TEST(Tent, RetainsEquipmentHeat) {
    const auto outside = still_night(-20.0);
    const TentModel tent = settled_tent(outside, Watts{900.0});
    // "the tent proved surprisingly good at retaining heat":
    // dT = P/G = 900/26 ~ 34.6 K above outside.
    EXPECT_NEAR(tent.air().temperature.value(), -20.0 + 900.0 / 26.0, 0.5);
}

TEST(Tent, NoPowerTracksOutside) {
    const auto outside = still_night(-12.0);
    const TentModel tent = settled_tent(outside, Watts{0.0});
    EXPECT_NEAR(tent.air().temperature.value(), -12.0, 0.2);
}

TEST(Tent, EachModificationLowersEquilibrium) {
    const auto outside = still_night(-10.0);
    const Watts p{700.0};
    const double closed = settled_tent(outside, p).air().temperature.value();
    const double inner =
        settled_tent(outside, p, {TentMod::kInnerTentRemoved}).air().temperature.value();
    const double inner_bottom =
        settled_tent(outside, p, {TentMod::kInnerTentRemoved, TentMod::kBottomOpened})
            .air()
            .temperature.value();
    const double all =
        settled_tent(outside, p,
                     {TentMod::kInnerTentRemoved, TentMod::kBottomOpened,
                      TentMod::kFanInstalled, TentMod::kFrontDoorHalfOpen})
            .air()
            .temperature.value();
    EXPECT_LT(inner, closed);
    EXPECT_LT(inner_bottom, inner);
    EXPECT_LT(all, inner_bottom);
}

TEST(Tent, FoilCutsSolarGain) {
    TentModel bare;
    TentModel foiled;
    foiled.apply_modification(TentMod::kReflectiveFoil);
    const WattsPerSquareMeter sun{400.0};
    EXPECT_GT(bare.solar_gain(sun).value(), 2.5 * foiled.solar_gain(sun).value());
}

TEST(Tent, SunWarmsTheTent) {
    auto sunny = still_night(-5.0);
    sunny.irradiance = WattsPerSquareMeter{500.0};
    const double with_sun = settled_tent(sunny, Watts{300.0}).air().temperature.value();
    const double without =
        settled_tent(still_night(-5.0), Watts{300.0}).air().temperature.value();
    EXPECT_GT(with_sun, without + 3.0);
}

TEST(Tent, WindIncreasesConductance) {
    const TentModel tent;
    const double calm = tent.effective_conductance(MetersPerSecond{0.0}).value();
    const double windy = tent.effective_conductance(MetersPerSecond{6.0}).value();
    EXPECT_NEAR(windy, 2.0 * calm, 1e-9);  // doubling speed by config
}

TEST(Tent, VentilationModsAmplifyWindSensitivity) {
    TentModel closed;
    TentModel open;
    open.apply_modification(TentMod::kBottomOpened);
    const double closed_gain = closed.effective_conductance(MetersPerSecond{6.0}).value() /
                               closed.effective_conductance(MetersPerSecond{0.0}).value();
    const double open_gain = open.effective_conductance(MetersPerSecond{6.0}).value() /
                             open.effective_conductance(MetersPerSecond{0.0}).value();
    EXPECT_GT(open_gain, closed_gain);
}

TEST(Tent, HumidityTracksRebasedOutside) {
    const auto outside = still_night(-10.0, 85.0);
    const TentModel tent = settled_tent(outside, Watts{700.0});
    const EnclosureAir air = tent.air();
    // Warmer inside than outside => RH strictly below outside's 85%.
    EXPECT_LT(air.humidity.value(), 85.0);
    EXPECT_GT(air.humidity.value(), 1.0);
    // Dew point consistency.
    EXPECT_LT(air.dew_point.value(), air.temperature.value());
}

TEST(Tent, ModificationFlagsReadable) {
    TentModel tent;
    EXPECT_FALSE(tent.has_modification(TentMod::kFanInstalled));
    tent.apply_modification(TentMod::kFanInstalled);
    EXPECT_TRUE(tent.has_modification(TentMod::kFanInstalled));
}

TEST(Tent, ShortCodesMatchFigure3) {
    EXPECT_EQ(short_code(TentMod::kReflectiveFoil), 'R');
    EXPECT_EQ(short_code(TentMod::kInnerTentRemoved), 'I');
    EXPECT_EQ(short_code(TentMod::kBottomOpened), 'B');
    EXPECT_EQ(short_code(TentMod::kFanInstalled), 'F');
}

TEST(PrototypeBoxes, BarelyContainHeat) {
    weather::WeatherSample outside = still_night(-9.2);
    PrototypeBoxModel boxes(Celsius{-9.2});
    boxes.set_equipment_power(Watts{110.0});
    for (int i = 0; i < 500; ++i) boxes.step(Duration::minutes(10), outside);
    // "The boxes did not really ... contain any heat": ~2 K above outside.
    EXPECT_NEAR(boxes.air().temperature.value(), -9.2 + 110.0 / 55.0, 0.3);
}

TEST(Basement, HoldsSetpoint) {
    BasementModel basement(Celsius{21.0});
    basement.set_equipment_power(Watts{1000.0});
    basement.step(Duration::minutes(10), still_night(-20.0));
    EXPECT_NEAR(basement.air().temperature.value(), 21.5, 1e-9);
    basement.set_equipment_power(Watts{0.0});
    basement.step(Duration::minutes(10), still_night(-20.0));
    EXPECT_NEAR(basement.air().temperature.value(), 21.0, 1e-9);
}

TEST(Basement, MetersCoolingEnergy) {
    BasementModel basement;
    basement.set_equipment_power(Watts{1000.0});
    basement.step(Duration::hours(1), still_night(0.0));
    EXPECT_NEAR(basement.cooling_energy().value(), 3.6e6, 1.0);
    EXPECT_THROW(basement.set_equipment_power(Watts{-1.0}), core::InvalidArgument);
}

TEST(Enclosures, NegativeDtThrows) {
    TentModel tent;
    PrototypeBoxModel boxes;
    BasementModel basement;
    const auto outside = still_night(0.0);
    EXPECT_THROW(tent.step(Duration::seconds(-1), outside), core::InvalidArgument);
    EXPECT_THROW(boxes.step(Duration::seconds(-1), outside), core::InvalidArgument);
    EXPECT_THROW(basement.step(Duration::seconds(-1), outside), core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::thermal
