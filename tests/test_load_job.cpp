#include "workload/load_job.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace zerodeg::workload {
namespace {

LoadJobConfig small_config() {
    LoadJobConfig cfg;
    cfg.corpus.total_bytes = 256 * 1024;
    cfg.target_blocks = 50;
    return cfg;
}

faults::MemoryFaultModel quiet_memory(std::uint64_t seed = 1) {
    return faults::MemoryFaultModel(faults::MemoryFaultParams{},
                                    core::RngStream(seed, "mem"));
}

faults::MemoryFaultModel noisy_memory(std::uint64_t seed = 1) {
    faults::MemoryFaultParams p;
    p.flip_probability_per_page_op = 1.0 / 1000.0;  // flips every run
    return faults::MemoryFaultModel(p, core::RngStream(seed, "mem"));
}

TEST(LoadJob, ReferenceIsStableAcrossInstances) {
    const LoadJob a(small_config(), 2010);
    const LoadJob b(small_config(), 2010);
    EXPECT_EQ(a.reference_digest(), b.reference_digest());
    EXPECT_EQ(a.block_count(), b.block_count());
}

TEST(LoadJob, BlockCountNearTarget) {
    const LoadJob job(LoadJobConfig{}, 2010);
    // The paper's tarball had 396 blocks; ours lands within a few.
    EXPECT_NEAR(static_cast<double>(job.block_count()), 396.0, 8.0);
}

TEST(LoadJob, CleanRunMatchesReference) {
    LoadJob job(small_config(), 2010);
    auto mem = quiet_memory();
    const JobResult r = job.run(mem, false);
    EXPECT_TRUE(r.hash_ok);
    EXPECT_EQ(r.digest, job.reference_digest());
    EXPECT_FALSE(r.forensics.has_value());
    EXPECT_EQ(r.page_ops, job.page_ops_per_run());
}

TEST(LoadJob, UncachedCleanRunAlsoMatches) {
    // With caching off the whole pipeline really runs, and determinism makes
    // the digest identical.
    LoadJobConfig cfg = small_config();
    cfg.cache_clean_runs = false;
    LoadJob job(cfg, 2010);
    auto mem = quiet_memory();
    const JobResult r = job.run(mem, false);
    EXPECT_TRUE(r.hash_ok);
    EXPECT_EQ(r.digest, job.reference_digest());
}

TEST(LoadJob, CorruptingFlipIsDetectedAndAnalyzed) {
    LoadJob job(small_config(), 2010);
    auto mem = noisy_memory();
    // Run until a flip actually lands (high probability per run).
    JobResult r;
    for (int i = 0; i < 50; ++i) {
        r = job.run(mem, false);
        if (!r.hash_ok) break;
    }
    ASSERT_FALSE(r.hash_ok);
    EXPECT_NE(r.digest, job.reference_digest());
    ASSERT_TRUE(r.forensics.has_value());
    // A flip in a payload leaves the directory whole; a flip in a block
    // header damages the directory walk and costs the rescan a block or two.
    EXPECT_LE(r.forensics->total_blocks, job.block_count());
    EXPECT_GE(r.forensics->total_blocks + 2, job.block_count());
    EXPECT_GE(r.forensics->corrupt_blocks.size() +
                  (r.forensics->directory_damaged ? 1 : 0),
              1u);
    // A single flip damages a single block ("only a single one of the 396
    // bzip2 compression blocks had been corrupted").
    if (r.raw_flips == 1) {
        EXPECT_EQ(r.forensics->corrupt_blocks.size(), 1u);
    }
}

TEST(LoadJob, EccHostAbsorbsSingleBitFlips) {
    LoadJobConfig cfg = small_config();
    LoadJob job(cfg, 2010);
    faults::MemoryFaultParams p;
    p.flip_probability_per_page_op = 1.0 / 1000.0;
    p.multi_bit_fraction = 0.0;
    faults::MemoryFaultModel mem(p, core::RngStream(5, "mem"));
    for (int i = 0; i < 30; ++i) {
        const JobResult r = job.run(mem, true);
        EXPECT_TRUE(r.hash_ok);
        if (r.raw_flips > 0) {
            EXPECT_EQ(r.corrected_flips, r.raw_flips);
        }
    }
}

TEST(LoadJob, PageOpsScaledToPaperMagnitude) {
    const LoadJob job(LoadJobConfig{}, 2010);
    // ~3.2e9 page ops over 27627 runs = ~116k per run; ours must be the
    // same order of magnitude so the wrong-hash *rate* transfers.
    EXPECT_GT(job.page_ops_per_run(), 40'000u);
    EXPECT_LT(job.page_ops_per_run(), 400'000u);
}

TEST(LoadJob, ZeroTargetBlocksThrows) {
    LoadJobConfig cfg = small_config();
    cfg.target_blocks = 0;
    EXPECT_THROW(LoadJob(cfg, 1), core::InvalidArgument);
}

TEST(LoadJob, ArchiveLargerThanCorpusButContainerSmaller) {
    const LoadJob job(small_config(), 2010);
    EXPECT_GT(job.archive_bytes(), 0u);
    EXPECT_LT(job.container_bytes(), job.archive_bytes());
}

}  // namespace
}  // namespace zerodeg::workload
