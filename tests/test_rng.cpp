#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace zerodeg::core {
namespace {

TEST(Rng, DeterministicBySeedAndName) {
    RngStream a(42, "weather");
    RngStream b(42, "weather");
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentNamesAreIndependent) {
    RngStream a(42, "weather");
    RngStream b(42, "faults");
    bool any_diff = false;
    for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, DifferentSeedsDiffer) {
    RngStream a(1, "x");
    RngStream b(2, "x");
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, Uniform01Bounds) {
    RngStream rng(7, "u");
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, Uniform01Mean) {
    RngStream rng(7, "u");
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(rng.uniform01());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformRange) {
    RngStream rng(7, "u");
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-5.0, 3.0);
        EXPECT_GE(v, -5.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds) {
    RngStream rng(7, "i");
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.uniform_int(0, 9);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 9);
        saw_lo |= v == 0;
        saw_hi |= v == 9;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
    RngStream rng(7, "i");
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntBadRangeThrows) {
    RngStream rng(7, "i");
    EXPECT_THROW((void)rng.uniform_int(3, 2), InvalidArgument);
}

TEST(Rng, UniformIntFuzzRange) {
    // The workload start fuzz: 0..119 seconds.
    RngStream rng(7, "fuzz");
    RunningStats s;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.uniform_int(0, 119);
        s.add(static_cast<double>(v));
    }
    EXPECT_NEAR(s.mean(), 59.5, 1.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 119.0);
}

TEST(Rng, NormalMoments) {
    RngStream rng(7, "n");
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(rng.normal());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalShifted) {
    RngStream rng(7, "n");
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(rng.normal(-9.2, 2.0));
    EXPECT_NEAR(s.mean(), -9.2, 0.06);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
    RngStream rng(7, "e");
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(rng.exponential(0.5));
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
    EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, ExponentialBadRateThrows) {
    RngStream rng(7, "e");
    EXPECT_THROW((void)rng.exponential(0.0), InvalidArgument);
    EXPECT_THROW((void)rng.exponential(-1.0), InvalidArgument);
}

TEST(Rng, PoissonSmallMean) {
    RngStream rng(7, "p");
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(static_cast<double>(rng.poisson(3.0)));
    EXPECT_NEAR(s.mean(), 3.0, 0.05);
    EXPECT_NEAR(s.variance(), 3.0, 0.15);
}

TEST(Rng, PoissonTinyMean) {
    // The memory-fault regime: mean ~2e-4 per run.
    RngStream rng(7, "p");
    std::uint64_t total = 0;
    constexpr int kRuns = 200000;
    for (int i = 0; i < kRuns; ++i) total += rng.poisson(2e-4);
    EXPECT_NEAR(static_cast<double>(total), 2e-4 * kRuns, 5.0 * std::sqrt(2e-4 * kRuns));
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
    RngStream rng(7, "p");
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(static_cast<double>(rng.poisson(400.0)));
    EXPECT_NEAR(s.mean(), 400.0, 1.0);
    EXPECT_NEAR(s.stddev(), 20.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
    RngStream rng(7, "p");
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonNegativeThrows) {
    RngStream rng(7, "p");
    EXPECT_THROW((void)rng.poisson(-1.0), InvalidArgument);
}

TEST(Rng, ChanceProbability) {
    RngStream rng(7, "c");
    int hits = 0;
    for (int i = 0; i < 100000; ++i) hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
    EXPECT_FALSE(rng.chance(0.0));
}

TEST(Rng, SplitmixKnownProperties) {
    std::uint64_t s1 = 0;
    std::uint64_t s2 = 0;
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
    // State advances.
    EXPECT_NE(s1, 0u);
}

TEST(Rng, Fnv1aStable) {
    EXPECT_EQ(fnv1a("weather"), fnv1a("weather"));
    EXPECT_NE(fnv1a("weather"), fnv1a("faults"));
    // FNV-1a of empty string is the offset basis.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
}

TEST(Rng, XoshiroSatisfiesUrbg) {
    Xoshiro256 g(1);
    static_assert(Xoshiro256::min() == 0);
    static_assert(Xoshiro256::max() == ~0ULL);
    EXPECT_NE(g(), g());
}

}  // namespace
}  // namespace zerodeg::core
