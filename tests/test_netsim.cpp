#include "monitoring/netsim.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::monitoring {
namespace {

using core::Duration;
using core::RngStream;

hardware::NetworkSwitch good(const char* name, int ports = 8) {
    hardware::SwitchConfig cfg;
    cfg.ports = ports;
    return hardware::NetworkSwitch(name, cfg, RngStream(1, name));
}

hardware::NetworkSwitch defective(const char* name, std::uint64_t seed) {
    hardware::SwitchConfig cfg;
    cfg.inherent_defect = true;
    cfg.defect_mean_hours_to_failure = 100.0;
    return hardware::NetworkSwitch(name, cfg, RngStream(seed, name));
}

TEST(Netsim, DirectPathThroughOneSwitch) {
    Network net;
    const std::size_t sw = net.add_switch(good("s0"));
    net.attach({1, "monitor"}, sw);
    net.attach({2, "host"}, sw);
    EXPECT_TRUE(net.path_up(1, 2));
    EXPECT_TRUE(net.path_up(2, 1));
}

TEST(Netsim, PathThroughUplinkTree) {
    Network net;
    const std::size_t root = net.add_switch(good("building", 24));
    const std::size_t tent_a = net.add_switch(good("tent-a"));
    const std::size_t tent_b = net.add_switch(good("tent-b"));
    net.uplink(tent_a, root);
    net.uplink(tent_b, root);
    net.attach({100, "monitor"}, root);
    net.attach({1, "host-01"}, tent_a);
    net.attach({2, "host-02"}, tent_b);
    EXPECT_TRUE(net.path_up(100, 1));
    EXPECT_TRUE(net.path_up(100, 2));
    EXPECT_TRUE(net.path_up(1, 2));  // via the root
}

TEST(Netsim, SwitchFailureSegmentsNetwork) {
    Network net;
    const std::size_t root = net.add_switch(good("building", 24));
    const std::size_t tent = net.add_switch(defective("tent", 5));
    net.uplink(tent, root);
    net.attach({100, "monitor"}, root);
    net.attach({1, "host-01"}, tent);
    net.attach({2, "host-02"}, tent);

    while (net.switch_at(tent).operational()) net.step(Duration::hours(1));
    EXPECT_FALSE(net.path_up(100, 1));
    EXPECT_FALSE(net.path_up(1, 2));   // even neighbors: their switch is dead
    EXPECT_TRUE(net.path_up(100, 100));
}

TEST(Netsim, ReplacementRestoresPath) {
    Network net;
    const std::size_t root = net.add_switch(good("building", 24));
    const std::size_t tent = net.add_switch(defective("tent", 5));
    net.uplink(tent, root);
    net.attach({100, "monitor"}, root);
    net.attach({1, "host-01"}, tent);
    while (net.switch_at(tent).operational()) net.step(Duration::hours(1));
    ASSERT_FALSE(net.path_up(100, 1));
    net.replace_switch(tent, good("tent-new"));
    EXPECT_TRUE(net.path_up(100, 1));
}

TEST(Netsim, UnknownNodesHaveNoPath) {
    Network net;
    const std::size_t sw = net.add_switch(good("s0"));
    net.attach({1, "a"}, sw);
    EXPECT_FALSE(net.path_up(1, 99));
    EXPECT_FALSE(net.path_up(98, 99));
}

TEST(Netsim, PortExhaustion) {
    Network net;
    hardware::SwitchConfig cfg;
    cfg.ports = 2;
    const std::size_t sw =
        net.add_switch(hardware::NetworkSwitch("tiny", cfg, RngStream(1, "t")));
    net.attach({1, "a"}, sw);
    net.attach({2, "b"}, sw);
    EXPECT_THROW(net.attach({3, "c"}, sw), core::InvalidArgument);
    EXPECT_EQ(net.ports_used(sw), 2u);
}

TEST(Netsim, UplinkConsumesPorts) {
    Network net;
    const std::size_t a = net.add_switch(good("a"));
    const std::size_t b = net.add_switch(good("b"));
    net.uplink(a, b);
    EXPECT_EQ(net.ports_used(a), 1u);
    EXPECT_EQ(net.ports_used(b), 1u);
}

TEST(Netsim, Validation) {
    Network net;
    const std::size_t a = net.add_switch(good("a"));
    const std::size_t b = net.add_switch(good("b"));
    EXPECT_THROW(net.attach({1, "x"}, 99), core::InvalidArgument);
    net.attach({1, "x"}, a);
    EXPECT_THROW(net.attach({1, "x"}, b), core::InvalidArgument);  // duplicate node
    EXPECT_THROW(net.uplink(a, a), core::InvalidArgument);
    net.uplink(a, b);
    EXPECT_THROW(net.uplink(a, b), core::InvalidArgument);  // already uplinked
    EXPECT_THROW(net.uplink(b, a), core::InvalidArgument);  // cycle
    EXPECT_THROW((void)net.switch_at(99), core::InvalidArgument);
    EXPECT_THROW(net.replace_switch(99, good("z")), core::InvalidArgument);
}

// The transport bridge: a dying loaner switch must look like a hung-up peer
// (core::TransportClosed), never like a host failure — the paper's observed
// failure mode, telemetry gaps in the collection path.
TEST(NetsimTransportBridge, DeadSwitchSurfacesAsTransportClosed) {
    Network net;
    const std::size_t root = net.add_switch(good("building", 24));
    const std::size_t tent = net.add_switch(defective("tent", 5));
    net.uplink(tent, root);
    net.attach({100, "monitor"}, root);
    net.attach({1, "host-01"}, tent);

    auto [monitor_end, host_end] = core::make_loopback_pair();
    NetworkGatedTransport monitor_link(net, 100, 1, std::move(monitor_end));
    NetworkGatedTransport host_link(net, 1, 100, std::move(host_end));

    // Healthy path: frames flow both ways.
    monitor_link.send("poll");
    std::string frame;
    ASSERT_TRUE(host_link.try_recv(frame));
    EXPECT_EQ(frame, "poll");
    host_link.send("md5sums #1");

    while (net.switch_at(tent).operational()) net.step(Duration::hours(1));

    // A frame delivered before the switch died still drains (it already sat
    // in the local buffer) — only new traffic is cut.
    ASSERT_TRUE(monitor_link.try_recv(frame));
    EXPECT_EQ(frame, "md5sums #1");
    EXPECT_THROW(monitor_link.send("poll"), core::TransportClosed);
    EXPECT_THROW(host_link.send("md5sums #2"), core::TransportClosed);
    EXPECT_THROW((void)monitor_link.try_recv(frame), core::TransportClosed);
    EXPECT_THROW((void)host_link.recv_wait(frame, 0), core::TransportClosed);

    // Swapping the switch restores the very same link: no transport-side
    // failure state survives the repair.
    net.replace_switch(tent, good("tent-new"));
    monitor_link.send("poll");
    ASSERT_TRUE(host_link.recv_wait(frame, 1000));
    EXPECT_EQ(frame, "poll");
}

TEST(NetsimTransportBridge, RejectsNullInnerTransport) {
    Network net;
    EXPECT_THROW(NetworkGatedTransport(net, 1, 2, nullptr), core::InvalidArgument);
}

TEST(Netsim, DisjointTreesUnreachable) {
    Network net;
    const std::size_t a = net.add_switch(good("a"));
    const std::size_t b = net.add_switch(good("b"));
    net.attach({1, "x"}, a);
    net.attach({2, "y"}, b);
    EXPECT_FALSE(net.path_up(1, 2));
}

}  // namespace
}  // namespace zerodeg::monitoring
