// The core correctness claim of the parallel Monte-Carlo engine: sharding
// independent seasons across workers is *bit-identical* to the serial loop,
// for any worker count.  Every stochastic process derives its streams from
// the season's master seed alone, results land in seed-indexed slots, and
// the summary folds in seed order — so `jobs` must be unobservable in the
// output.  Labelled `parallel` in CTest for the TSan gate.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "experiment/census.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/runner.hpp"

namespace zerodeg::experiment {
namespace {

using core::TimePoint;

constexpr std::uint64_t kBaseSeed = 4242;
constexpr std::size_t kSeeds = 6;

/// A short, cheap season — the parity property is about scheduling, not
/// about season length, so keep each cell fast.
ExperimentConfig cheap_config(std::size_t /*index*/, std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.master_seed = seed;
    cfg.end = TimePoint::from_date(2010, 2, 26);  // one week
    cfg.load.corpus.total_bytes = 64 * 1024;
    cfg.load.target_blocks = 20;
    return cfg;
}

CensusPlan cheap_plan() {
    CensusPlan plan;
    plan.base_seed = kBaseSeed;
    plan.seeds = kSeeds;
    plan.make_config = cheap_config;
    return plan;
}

/// The serial reference: the exact loop ParallelCensus replaced (construct,
/// run, take_census per seed, summarize in seed order).
const CensusResult& serial_reference() {
    static const CensusResult reference = [] {
        CensusResult r;
        for (std::size_t i = 0; i < kSeeds; ++i) {
            ExperimentConfig cfg = cheap_config(i, kBaseSeed + i);
            ExperimentRunner run(cfg);
            run.run();
            r.censuses.push_back(take_census(run));
        }
        r.summary = summarize(r.censuses);
        return r;
    }();
    return reference;
}

/// Field-by-field *exact* comparison (integers compare with ==; summary
/// doubles must match to the last bit because the reduce is ordered).
void expect_identical(const FaultCensus& a, const FaultCensus& b, std::size_t seed_index) {
    SCOPED_TRACE("seed index " + std::to_string(seed_index));
    EXPECT_EQ(a.tent_hosts, b.tent_hosts);
    EXPECT_EQ(a.basement_hosts, b.basement_hosts);
    EXPECT_EQ(a.tent_hosts_failed, b.tent_hosts_failed);
    EXPECT_EQ(a.basement_hosts_failed, b.basement_hosts_failed);
    EXPECT_EQ(a.system_failures, b.system_failures);
    EXPECT_EQ(a.transient_failures, b.transient_failures);
    EXPECT_EQ(a.permanent_failures, b.permanent_failures);
    EXPECT_EQ(a.sensor_incidents, b.sensor_incidents);
    EXPECT_EQ(a.switch_failures, b.switch_failures);
    EXPECT_EQ(a.fan_faults, b.fan_faults);
    EXPECT_EQ(a.disk_faults, b.disk_faults);
    EXPECT_EQ(a.load_runs, b.load_runs);
    EXPECT_EQ(a.wrong_hashes, b.wrong_hashes);
    EXPECT_EQ(a.wrong_hashes_tent, b.wrong_hashes_tent);
    EXPECT_EQ(a.wrong_hashes_basement, b.wrong_hashes_basement);
    EXPECT_EQ(a.page_ops, b.page_ops);
    EXPECT_EQ(a.page_ops_non_ecc, b.page_ops_non_ecc);
    EXPECT_EQ(a.requests_completed, b.requests_completed);
    EXPECT_EQ(a.requests_dropped, b.requests_dropped);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    EXPECT_EQ(a.p99_sojourn_us, b.p99_sojourn_us);
}

/// Doubles compared for bit-identity, not closeness: memcmp of the value
/// representation, which also fails on -0.0 vs 0.0 or NaN-payload drift.
void expect_bitwise(double a, double b, const char* what) {
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
        << what << ": " << a << " vs " << b << " differ in bits";
}

void expect_identical(const CensusSummary& a, const CensusSummary& b) {
    EXPECT_EQ(a.seeds, b.seeds);
    expect_bitwise(a.mean_tent_failure_rate, b.mean_tent_failure_rate, "mean_tent_failure_rate");
    expect_bitwise(a.mean_fleet_failure_rate, b.mean_fleet_failure_rate,
                   "mean_fleet_failure_rate");
    expect_bitwise(a.mean_system_failures, b.mean_system_failures, "mean_system_failures");
    expect_bitwise(a.mean_wrong_hashes, b.mean_wrong_hashes, "mean_wrong_hashes");
    expect_bitwise(a.mean_runs, b.mean_runs, "mean_runs");
    expect_bitwise(a.mean_page_fault_ratio, b.mean_page_fault_ratio, "mean_page_fault_ratio");
    expect_bitwise(a.mean_requests_completed, b.mean_requests_completed,
                   "mean_requests_completed");
    expect_bitwise(a.mean_deadline_miss_fraction, b.mean_deadline_miss_fraction,
                   "mean_deadline_miss_fraction");
    expect_bitwise(a.frac_runs_with_sensor_incident, b.frac_runs_with_sensor_incident,
                   "frac_runs_with_sensor_incident");
    expect_bitwise(a.frac_runs_with_switch_failures, b.frac_runs_with_switch_failures,
                   "frac_runs_with_switch_failures");
}

class ParallelDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelDeterminism, CensusMatchesSerialLoopBitForBit) {
    const std::size_t jobs = GetParam();
    const CensusResult parallel = ParallelCensus(cheap_plan(), jobs).run();
    const CensusResult& serial = serial_reference();

    ASSERT_EQ(parallel.censuses.size(), serial.censuses.size());
    for (std::size_t i = 0; i < kSeeds; ++i) {
        expect_identical(parallel.censuses[i], serial.censuses[i], i);
    }
    expect_identical(parallel.summary, serial.summary);
}

INSTANTIATE_TEST_SUITE_P(Jobs, ParallelDeterminism,
                         ::testing::Values<std::size_t>(1, 2, 8),
                         [](const auto& param_info) {
                             return "jobs" + std::to_string(param_info.param);
                         });

TEST(ParallelDeterminism, RepeatedParallelRunsAgree) {
    // Same jobs value twice: scheduling noise between two parallel runs must
    // also be unobservable.
    const CensusResult a = ParallelCensus(cheap_plan(), 2).run();
    const CensusResult b = ParallelCensus(cheap_plan(), 2).run();
    for (std::size_t i = 0; i < kSeeds; ++i) expect_identical(a.censuses[i], b.censuses[i], i);
    expect_identical(a.summary, b.summary);
}

TEST(SweepRunner, MapMatchesSerialForNonCensusCells) {
    // The generic sweep surface used by the climate/ECC benches, on a cheap
    // deterministic payload.
    const auto fn = [](std::size_t i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < 1000; ++k) {
            acc += static_cast<double>((i * 1315423911u + k * 2654435761u) % 1000) * 1e-3;
        }
        return acc;
    };
    const auto serial = SweepRunner(1).map(32, fn);
    for (const std::size_t jobs : {2u, 8u}) {
        const auto parallel = SweepRunner(jobs).map(32, fn);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            expect_bitwise(parallel[i], serial[i], "sweep cell");
        }
    }
}

TEST(SweepRunner, JobsZeroMeansHardwareWorkers) {
    EXPECT_EQ(SweepRunner(0).jobs(), core::TaskPool::hardware_workers());
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

}  // namespace
}  // namespace zerodeg::experiment
