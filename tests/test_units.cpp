#include "core/units.hpp"

#include <gtest/gtest.h>

namespace zerodeg::core {
namespace {

using namespace zerodeg::core::literals;

TEST(Units, CelsiusKelvinRoundTrip) {
    const Celsius c{-22.0};
    EXPECT_DOUBLE_EQ(c.to_kelvin().value(), 251.15);
    EXPECT_DOUBLE_EQ(c.to_kelvin().to_celsius().value(), -22.0);
}

TEST(Units, AbsoluteZero) {
    EXPECT_DOUBLE_EQ(Kelvin{0.0}.to_celsius().value(), -273.15);
}

TEST(Units, Arithmetic) {
    const Celsius a{10.0};
    const Celsius b{-4.0};
    EXPECT_DOUBLE_EQ((a + b).value(), 6.0);
    EXPECT_DOUBLE_EQ((a - b).value(), 14.0);
    EXPECT_DOUBLE_EQ((-b).value(), 4.0);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
    EXPECT_DOUBLE_EQ((2.0 * a).value(), 20.0);
    EXPECT_DOUBLE_EQ((a / 2.0).value(), 5.0);
    EXPECT_DOUBLE_EQ(a / b, -2.5);
}

TEST(Units, CompoundAssignment) {
    Celsius t{1.0};
    t += Celsius{2.0};
    EXPECT_DOUBLE_EQ(t.value(), 3.0);
    t -= Celsius{0.5};
    EXPECT_DOUBLE_EQ(t.value(), 2.5);
    t *= 4.0;
    EXPECT_DOUBLE_EQ(t.value(), 10.0);
}

TEST(Units, Ordering) {
    EXPECT_LT(Celsius{-22.0}, Celsius{-4.0});
    EXPECT_GT(Watts{100.0}, Watts{99.0});
    EXPECT_EQ(Celsius{0.0}, Celsius{0.0});
}

TEST(Units, DefaultIsZero) {
    EXPECT_DOUBLE_EQ(Celsius{}.value(), 0.0);
    EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
}

TEST(Units, RelHumidityFraction) {
    EXPECT_DOUBLE_EQ(RelHumidity{85.0}.fraction(), 0.85);
    EXPECT_DOUBLE_EQ(RelHumidity::from_fraction(0.5).value(), 50.0);
}

TEST(Units, RelHumidityClamp) {
    EXPECT_DOUBLE_EQ(RelHumidity{120.0}.clamped().value(), 100.0);
    EXPECT_DOUBLE_EQ(RelHumidity{-5.0}.clamped().value(), 0.0);
    EXPECT_DOUBLE_EQ(RelHumidity{55.0}.clamped().value(), 55.0);
}

TEST(Units, WattsKilowatts) {
    EXPECT_DOUBLE_EQ(Watts::from_kilowatts(75.0).value(), 75000.0);
    EXPECT_DOUBLE_EQ(Watts{6900.0}.kilowatts(), 6.9);
}

TEST(Units, JoulesKwh) {
    EXPECT_DOUBLE_EQ(Joules::from_kilowatt_hours(1.0).value(), 3.6e6);
    EXPECT_DOUBLE_EQ(Joules{3.6e6}.kilowatt_hours(), 1.0);
}

TEST(Units, EnergyFromPower) {
    // 100 W for an hour is 0.1 kWh.
    EXPECT_DOUBLE_EQ(energy(Watts{100.0}, 3600.0).kilowatt_hours(), 0.1);
}

TEST(Units, ConductanceTimesDelta) {
    const Watts q = WattsPerKelvin{26.0} * Celsius{10.0};
    EXPECT_DOUBLE_EQ(q.value(), 260.0);
}

TEST(Units, IrradianceOverArea) {
    EXPECT_DOUBLE_EQ(WattsPerSquareMeter{500.0}.over_area(1.35).value(), 675.0);
}

TEST(Units, PascalsHectopascals) {
    EXPECT_DOUBLE_EQ(Pascals::from_hectopascals(6.112).value(), 611.2);
    EXPECT_DOUBLE_EQ(Pascals{611.2}.hectopascals(), 6.112);
}

TEST(Units, Literals) {
    EXPECT_DOUBLE_EQ((-22.0_degC).value(), -22.0);
    EXPECT_DOUBLE_EQ((80_rh).value(), 80.0);
    EXPECT_DOUBLE_EQ((75_kW).value(), 75000.0);
    EXPECT_DOUBLE_EQ((4.5_mps).value(), 4.5);
    EXPECT_DOUBLE_EQ((273.15_K).to_celsius().value(), 0.0);
}

TEST(Units, ToStringFormats) {
    EXPECT_EQ(to_string(Celsius{-22.0}), "-22.00 degC");
    EXPECT_EQ(to_string(RelHumidity{85.5}), "85.50% RH");
    EXPECT_EQ(to_string(Watts{500.0}), "500.00 W");
    EXPECT_EQ(to_string(Watts{75000.0}), "75.00 kW");
    EXPECT_EQ(to_string(Joules{7.2e6}), "2.00 kWh");
    EXPECT_EQ(to_string(Joules{100.0}), "100.00 J");
}

}  // namespace
}  // namespace zerodeg::core
