#include "core/sim_time.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::core {
namespace {

TEST(SimTime, EpochIsZero) {
    const TimePoint t = TimePoint::from_date(1970, 1, 1);
    EXPECT_EQ(t.seconds_since_epoch(), 0);
}

TEST(SimTime, KnownPaperDates) {
    // The experiment's key dates convert consistently.
    const TimePoint start = TimePoint::from_date(2010, 2, 19);
    const CivilDateTime c = start.to_civil();
    EXPECT_EQ(c.year, 2010);
    EXPECT_EQ(c.month, 2);
    EXPECT_EQ(c.day, 19);
    EXPECT_EQ(c.hour, 0);
}

TEST(SimTime, CivilRoundTripWithTime) {
    const CivilDateTime in{2010, 3, 7, 4, 40, 0};  // host #15's first failure
    const TimePoint t = TimePoint::from_civil(in);
    EXPECT_EQ(t.to_civil(), in);
    EXPECT_EQ(t.to_string(), "2010-03-07 04:40:00");
}

TEST(SimTime, LeapYearFebruary) {
    // 2008 was a leap year; 2010 was not.
    EXPECT_NO_THROW((void)TimePoint::from_date(2008, 2, 29));
    const TimePoint feb28 = TimePoint::from_date(2010, 2, 28);
    const TimePoint mar1 = TimePoint::from_date(2010, 3, 1);
    EXPECT_EQ((mar1 - feb28).count(), 86400);
}

TEST(SimTime, DayOfYear) {
    EXPECT_EQ(TimePoint::from_date(2010, 1, 1).day_of_year(), 1);
    EXPECT_EQ(TimePoint::from_date(2010, 2, 19).day_of_year(), 50);
    EXPECT_EQ(TimePoint::from_date(2010, 12, 31).day_of_year(), 365);
    EXPECT_EQ(TimePoint::from_date(2008, 12, 31).day_of_year(), 366);
}

TEST(SimTime, IsoWeekday) {
    // 1970-01-01 was a Thursday.
    EXPECT_EQ(TimePoint::from_date(1970, 1, 1).iso_weekday(), 4);
    // 2010-03-17 (host #15's second failure, "Wednesday") was a Wednesday.
    EXPECT_EQ(TimePoint::from_date(2010, 3, 17).iso_weekday(), 3);
    // 2010-02-19 was a Friday ("scheduled ... to begin the following
    // Friday (Feb. 19th)").
    EXPECT_EQ(TimePoint::from_date(2010, 2, 19).iso_weekday(), 5);
}

TEST(SimTime, SecondsOfDayAndFraction) {
    const TimePoint t = TimePoint::from_civil({2010, 3, 7, 12, 0, 0});
    EXPECT_EQ(t.seconds_of_day(), 43200);
    EXPECT_DOUBLE_EQ(t.day_fraction(), 0.5);
}

TEST(SimTime, DurationFactories) {
    EXPECT_EQ(Duration::minutes(10).count(), 600);
    EXPECT_EQ(Duration::hours(2).count(), 7200);
    EXPECT_EQ(Duration::days(1).count(), 86400);
    EXPECT_DOUBLE_EQ(Duration::days(2).total_hours(), 48.0);
    EXPECT_DOUBLE_EQ(Duration::hours(12).total_days(), 0.5);
}

TEST(SimTime, Arithmetic) {
    const TimePoint t = TimePoint::from_date(2010, 2, 19);
    EXPECT_EQ((t + Duration::days(7)).date_string(), "2010-02-26");
    EXPECT_EQ((t - Duration::days(7)).date_string(), "2010-02-12");
    EXPECT_EQ((t + Duration::days(7)) - t, Duration::days(7));
}

TEST(SimTime, InvalidCivilThrows) {
    EXPECT_THROW((void)TimePoint::from_civil({2010, 13, 1, 0, 0, 0}), InvalidArgument);
    EXPECT_THROW((void)TimePoint::from_civil({2010, 0, 1, 0, 0, 0}), InvalidArgument);
    EXPECT_THROW((void)TimePoint::from_civil({2010, 1, 32, 0, 0, 0}), InvalidArgument);
    EXPECT_THROW((void)TimePoint::from_civil({2010, 1, 1, 24, 0, 0}), InvalidArgument);
    EXPECT_THROW((void)TimePoint::from_civil({2010, 1, 1, 0, 60, 0}), InvalidArgument);
}

TEST(SimTime, NegativeTimesBeforeEpoch) {
    const TimePoint t = TimePoint::from_date(1969, 12, 31);
    EXPECT_LT(t.seconds_since_epoch(), 0);
    EXPECT_EQ(t.date_string(), "1969-12-31");
    EXPECT_EQ(t.seconds_of_day(), 0);
}

// Property: days_from_civil and civil_from_days are inverse over a broad
// range of dates.
class CivilRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CivilRoundTrip, Inverse) {
    const int year = GetParam();
    for (const int month : {1, 2, 3, 6, 12}) {
        for (const int day : {1, 15, 28}) {
            const std::int64_t days = days_from_civil(year, month, day);
            int y = 0, m = 0, d = 0;
            civil_from_days(days, y, m, d);
            EXPECT_EQ(y, year);
            EXPECT_EQ(m, month);
            EXPECT_EQ(d, day);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Years, CivilRoundTrip,
                         ::testing::Values(1900, 1970, 1999, 2000, 2008, 2010, 2038, 2100));

// Property: consecutive days differ by exactly one.
class ConsecutiveDays : public ::testing::TestWithParam<int> {};

TEST_P(ConsecutiveDays, MonotoneByOne) {
    const int year = GetParam();
    std::int64_t prev = days_from_civil(year, 1, 1) - 1;
    for (int doy = 0; doy < 365; ++doy) {
        const TimePoint t = TimePoint::from_date(year, 1, 1) + Duration::days(doy);
        const CivilDateTime c = t.to_civil();
        const std::int64_t days = days_from_civil(c.year, c.month, c.day);
        EXPECT_EQ(days, prev + 1);
        prev = days;
    }
}

INSTANTIATE_TEST_SUITE_P(Years, ConsecutiveDays, ::testing::Values(2009, 2010, 2012));

}  // namespace
}  // namespace zerodeg::core
