#include "weather/psychrometrics.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::weather {
namespace {

TEST(Psychro, SaturationPressureKnownPoints) {
    // Magnus at 0 degC gives 611.2 Pa by construction.
    EXPECT_NEAR(saturation_vapor_pressure_water(Celsius{0.0}).value(), 611.2, 0.1);
    // ~2.33 kPa at 20 degC (tables: 2339 Pa).
    EXPECT_NEAR(saturation_vapor_pressure_water(Celsius{20.0}).value(), 2339.0, 15.0);
    // ~103 Pa over ice at -20 degC.
    EXPECT_NEAR(saturation_vapor_pressure_ice(Celsius{-20.0}).value(), 103.0, 5.0);
}

TEST(Psychro, IceBelowWaterBelowZero) {
    // Below freezing, saturation over ice is lower than over (supercooled)
    // water — the reason frost forms preferentially.
    for (const double t : {-30.0, -20.0, -10.0, -2.0}) {
        EXPECT_LT(saturation_vapor_pressure_ice(Celsius{t}).value(),
                  saturation_vapor_pressure_water(Celsius{t}).value())
            << "at " << t;
    }
}

TEST(Psychro, BranchSelection) {
    EXPECT_DOUBLE_EQ(saturation_vapor_pressure(Celsius{-5.0}).value(),
                     saturation_vapor_pressure_ice(Celsius{-5.0}).value());
    EXPECT_DOUBLE_EQ(saturation_vapor_pressure(Celsius{5.0}).value(),
                     saturation_vapor_pressure_water(Celsius{5.0}).value());
}

TEST(Psychro, SaturationMonotoneInTemperature) {
    double prev = 0.0;
    for (double t = -40.0; t <= 40.0; t += 1.0) {
        const double e = saturation_vapor_pressure(Celsius{t}).value();
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(Psychro, VaporPressureScalesWithRh) {
    const Pascals full = vapor_pressure(Celsius{10.0}, RelHumidity{100.0});
    const Pascals half = vapor_pressure(Celsius{10.0}, RelHumidity{50.0});
    EXPECT_NEAR(half.value() * 2.0, full.value(), 1e-9);
}

TEST(Psychro, DewPointAtSaturationIsAirTemp) {
    for (const double t : {2.0, 10.0, 25.0}) {
        EXPECT_NEAR(dew_point(Celsius{t}, RelHumidity{100.0}).value(), t, 0.05) << t;
    }
}

TEST(Psychro, DewPointBelowAirTempWhenUnsaturated) {
    const Celsius dp = dew_point(Celsius{10.0}, RelHumidity{50.0});
    EXPECT_LT(dp.value(), 10.0);
    EXPECT_NEAR(dp.value(), 0.1, 1.0);  // tables: ~0.1 degC
}

TEST(Psychro, DewPointInverseProperty) {
    // dew_point_from_vapor_pressure inverts vapor pressure over water.
    for (const double t : {-5.0, 0.0, 8.0, 21.0}) {
        const Pascals e = saturation_vapor_pressure_water(Celsius{t});
        EXPECT_NEAR(dew_point_from_vapor_pressure(e).value(), t, 1e-6);
    }
}

TEST(Psychro, FrostPointInverse) {
    for (const double t : {-25.0, -10.0, -1.0}) {
        const Pascals e = saturation_vapor_pressure_ice(Celsius{t});
        EXPECT_NEAR(frost_point_from_vapor_pressure(e).value(), t, 1e-6);
    }
}

TEST(Psychro, NonPositivePressureThrows) {
    EXPECT_THROW((void)dew_point_from_vapor_pressure(Pascals{0.0}), core::InvalidArgument);
    EXPECT_THROW((void)frost_point_from_vapor_pressure(Pascals{-1.0}), core::InvalidArgument);
}

TEST(Psychro, RebaseSameTemperatureIsIdentity) {
    const RelHumidity rh = rebase_humidity(Celsius{5.0}, RelHumidity{70.0}, Celsius{5.0});
    EXPECT_NEAR(rh.value(), 70.0, 1e-9);
}

TEST(Psychro, RebaseWarmerLowersRh) {
    // The tent effect: same moisture, warmer air, lower relative humidity.
    const RelHumidity inside = rebase_humidity(Celsius{-10.0}, RelHumidity{85.0}, Celsius{5.0});
    EXPECT_LT(inside.value(), 85.0);
    EXPECT_GT(inside.value(), 5.0);
}

TEST(Psychro, RebaseColderRaisesRh) {
    const RelHumidity out = rebase_humidity(Celsius{5.0}, RelHumidity{50.0}, Celsius{-5.0});
    EXPECT_GT(out.value(), 50.0);
}

TEST(Psychro, RebaseRoundTrip) {
    const RelHumidity there = rebase_humidity(Celsius{-8.0}, RelHumidity{80.0}, Celsius{4.0});
    const RelHumidity back = rebase_humidity(Celsius{4.0}, there, Celsius{-8.0});
    EXPECT_NEAR(back.value(), 80.0, 1e-9);
}

TEST(Psychro, AbsoluteHumidityKnownPoint) {
    // Saturated air at 20 degC holds ~17.3 g/m^3.
    EXPECT_NEAR(absolute_humidity(Celsius{20.0}, RelHumidity{100.0}).value(), 17.3, 0.4);
    // Saturated air at -10 degC holds ~2.1 g/m^3 (over ice).
    EXPECT_NEAR(absolute_humidity(Celsius{-10.0}, RelHumidity{100.0}).value(), 2.1, 0.3);
}

TEST(Psychro, CondensationOnColdSurface) {
    // Warm humid air over a freezing-cold case: condensation.
    EXPECT_TRUE(condensation_on_surface(Celsius{-15.0}, Celsius{5.0}, RelHumidity{80.0}));
    // A powered case warmer than its surroundings: safe.
    EXPECT_FALSE(condensation_on_surface(Celsius{10.0}, Celsius{0.0}, RelHumidity{90.0}));
}

TEST(Psychro, CondensationMarginSigns) {
    const Celsius safe = condensation_margin(Celsius{10.0}, Celsius{0.0}, RelHumidity{80.0});
    EXPECT_GT(safe.value(), 0.0);
    const Celsius wet = condensation_margin(Celsius{-20.0}, Celsius{10.0}, RelHumidity{90.0});
    EXPECT_LT(wet.value(), 0.0);
}

TEST(Psychro, DryAirNeverCondenses) {
    EXPECT_FALSE(condensation_on_surface(Celsius{-40.0}, Celsius{30.0}, RelHumidity{0.0}));
}

}  // namespace
}  // namespace zerodeg::weather
