#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "workload/archive.hpp"
#include "workload/corpus.hpp"

namespace zerodeg::workload {
namespace {

TEST(Corpus, DeterministicForSeed) {
    const SyntheticCorpus a(CorpusConfig{}, 2010);
    const SyntheticCorpus b(CorpusConfig{}, 2010);
    ASSERT_EQ(a.file_count(), b.file_count());
    for (std::size_t i = 0; i < a.file_count(); ++i) {
        EXPECT_EQ(a.files()[i].path, b.files()[i].path);
        EXPECT_EQ(a.files()[i].contents, b.files()[i].contents);
    }
}

TEST(Corpus, DifferentSeedsDiffer) {
    const SyntheticCorpus a(CorpusConfig{}, 1);
    const SyntheticCorpus b(CorpusConfig{}, 2);
    EXPECT_NE(a.files()[0].contents, b.files()[0].contents);
}

TEST(Corpus, MeetsSizeTarget) {
    CorpusConfig cfg;
    cfg.total_bytes = 512 * 1024;
    const SyntheticCorpus c(cfg, 7);
    EXPECT_GE(c.total_bytes(), cfg.total_bytes);
    EXPECT_LT(c.total_bytes(), cfg.total_bytes + 2 * cfg.mean_file_bytes);
    EXPECT_GT(c.file_count(), 10u);
}

TEST(Corpus, PathsAreUnique) {
    const SyntheticCorpus c(CorpusConfig{}, 3);
    std::set<std::string> paths;
    for (const CorpusFile& f : c.files()) paths.insert(f.path);
    EXPECT_EQ(paths.size(), c.file_count());
}

TEST(Corpus, LooksLikeSource) {
    const SyntheticCorpus c(CorpusConfig{}, 3);
    const std::string text(c.files()[0].contents.begin(), c.files()[0].contents.end());
    EXPECT_NE(text.find("#include"), std::string::npos);
    EXPECT_NE(text.find("static"), std::string::npos);
    EXPECT_NE(text.find("return"), std::string::npos);
}

TEST(Corpus, Validation) {
    CorpusConfig cfg;
    cfg.total_bytes = 0;
    EXPECT_THROW(SyntheticCorpus(cfg, 1), core::InvalidArgument);
}

CorpusConfig small_config() {
    CorpusConfig cfg;
    cfg.total_bytes = 64 * 1024;
    cfg.mean_file_bytes = 8 * 1024;
    return cfg;
}

TEST(Archive, RoundTrip) {
    const SyntheticCorpus corpus(small_config(), 5);
    const auto bytes = write_archive(corpus.files());
    // Structure: multiple of the record size.
    EXPECT_EQ(bytes.size() % kRecordSize, 0u);
    const auto files = read_archive(bytes);
    ASSERT_EQ(files.size(), corpus.file_count());
    for (std::size_t i = 0; i < files.size(); ++i) {
        EXPECT_EQ(files[i].path, corpus.files()[i].path);
        EXPECT_EQ(files[i].contents, corpus.files()[i].contents);
    }
}

TEST(Archive, EmptyFileList) {
    const auto bytes = write_archive({});
    EXPECT_EQ(bytes.size(), 2 * kRecordSize);  // just the end marker
    EXPECT_TRUE(read_archive(bytes).empty());
    EXPECT_TRUE(archive_intact(bytes));
}

TEST(Archive, EmptyFileContents) {
    std::vector<CorpusFile> files{{"empty.c", {}}};
    const auto bytes = write_archive(files);
    const auto back = read_archive(bytes);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_TRUE(back[0].contents.empty());
}

TEST(Archive, HeaderCorruptionDetected) {
    const SyntheticCorpus corpus(small_config(), 5);
    auto bytes = write_archive(corpus.files());
    bytes[5] ^= 0xff;  // inside the first header's name field
    EXPECT_THROW((void)read_archive(bytes), core::CorruptData);
    EXPECT_FALSE(archive_intact(bytes));
}

TEST(Archive, ContentCorruptionInvisibleToHeaders) {
    // A flipped content byte does NOT trip the header checksums — that is
    // exactly why the paper's md5sum step exists.
    const SyntheticCorpus corpus(small_config(), 5);
    auto bytes = write_archive(corpus.files());
    bytes[kRecordSize + 10] ^= 0x01;  // first file's contents
    EXPECT_TRUE(archive_intact(bytes));
    EXPECT_NO_THROW((void)read_archive(bytes));
}

TEST(Archive, TruncationDetected) {
    const SyntheticCorpus corpus(small_config(), 5);
    auto bytes = write_archive(corpus.files());
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW((void)read_archive(bytes), core::CorruptData);
}

TEST(Archive, MissingEndMarker) {
    const SyntheticCorpus corpus(small_config(), 5);
    auto bytes = write_archive(corpus.files());
    bytes.resize(bytes.size() - 2 * kRecordSize);
    EXPECT_THROW((void)read_archive(bytes), core::CorruptData);
}

TEST(Archive, OverlongPathRejected) {
    std::vector<CorpusFile> files{{std::string(150, 'p'), {1, 2, 3}}};
    EXPECT_THROW((void)write_archive(files), core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::workload
