// Unit tests for tools/lint — one synthetic snippet per check id, plus the
// suppression grammar, the meta checks (ZD098/ZD099) and the baseline
// round-trip.  These drive the checker API directly; the tree-wide gate is
// the separate `lint_tree` CTest (tools/CMakeLists.txt).
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace zerodeg::lint {
namespace {

[[nodiscard]] std::vector<std::string> ids_of(const std::vector<Diagnostic>& diags) {
    std::vector<std::string> ids;
    ids.reserve(diags.size());
    for (const Diagnostic& d : diags) ids.push_back(d.id);
    return ids;
}

[[nodiscard]] bool has_id(const std::vector<Diagnostic>& diags, std::string_view id) {
    return std::any_of(diags.begin(), diags.end(),
                       [&](const Diagnostic& d) { return d.id == id; });
}

TEST(LintChecks, BannedCRand) {
    const auto diags = lint_source("src/faults/x.cpp", "int f() { return std::rand(); }\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD001");
    EXPECT_EQ(diags[0].line, 1u);
    EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintChecks, RandomDevice) {
    const auto diags =
        lint_source("src/weather/x.cpp", "void f() {\n  std::random_device rd;\n}\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD002");
    EXPECT_EQ(diags[0].line, 2u);
}

TEST(LintChecks, WallClockBannedOutsideMonitoring) {
    const std::string src = "auto now() { return std::chrono::system_clock::now(); }\n";
    EXPECT_EQ(ids_of(lint_source("src/experiment/x.cpp", src)),
              std::vector<std::string>{"ZD003"});
    // monitoring owns real-telemetry timestamps: same code, no finding.
    EXPECT_TRUE(lint_source("src/monitoring/x.cpp", src).empty());
}

TEST(LintChecks, CTimeSpellings) {
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", "long t = time(nullptr);\n"), "ZD003"));
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", "long t = ::time(&out);\n"), "ZD003"));
    // Project APIs that happen to be named time() are not wall clocks.
    EXPECT_TRUE(lint_source("src/core/x.cpp", "auto t = clockobj.time(0);\n").empty());
}

TEST(LintChecks, BenchClockOnlyInBenchAndTools) {
    const std::string src = "auto t0 = zerodeg::core::bench_clock::now();\n";
    // Simulation code must not touch the benchmark timing seam.
    EXPECT_EQ(ids_of(lint_source("src/experiment/x.cpp", src)),
              std::vector<std::string>{"ZD013"});
    // The sanctioned consumers: bench targets and tools.
    EXPECT_TRUE(lint_source("bench/bench_perf_tick.cpp", src).empty());
    EXPECT_TRUE(lint_source("tools/zerodeg_cli.cpp", src).empty());
}

TEST(LintChecks, BenchClockImplIsTheSanctionedSteadyClockRead) {
    // The seam's own translation unit may read steady_clock (ZD003 exempt)
    // and of course names bench_clock (ZD013 exempt).
    const std::string src =
        "auto n = std::chrono::steady_clock::now();\n"
        "bench_clock::time_point t;\n";
    EXPECT_TRUE(lint_source("src/core/bench_clock.cpp", src).empty());
    EXPECT_TRUE(lint_source("src/core/bench_clock.hpp",
                            "#pragma once\nclass bench_clock {};\n")
                    .empty());
    // Any other src/core file is still banned from both.
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", src), "ZD003"));
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", src), "ZD013"));
}

TEST(LintChecks, GetenvOnlyInTools) {
    const std::string src = "const char* v = std::getenv(\"ZERODEG_HOME\");\n";
    EXPECT_EQ(ids_of(lint_source("src/experiment/x.cpp", src)),
              std::vector<std::string>{"ZD004"});
    EXPECT_TRUE(lint_source("tools/zerodeg_cli.cpp", src).empty());
}

TEST(LintChecks, RawIpcOnlyInTheTransportSeam) {
    const std::string calls =
        "int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n"
        "FILE* p = popen(\"ls\", \"r\");\n"
        "int fds[2]; pipe(fds);\n";
    // Three lines, three findings — anywhere but the seam's own files.
    EXPECT_EQ(ids_of(lint_source("src/experiment/x.cpp", calls)),
              (std::vector<std::string>{"ZD014", "ZD014", "ZD014"}));
    EXPECT_TRUE(has_id(lint_source("tools/zerodeg_cli.cpp", calls), "ZD014"));
    EXPECT_TRUE(has_id(lint_source("tests/test_x.cpp", calls), "ZD014"));
    // The seam's implementation files are the sanctioned home.
    EXPECT_TRUE(lint_source("src/core/transport_unix.cpp", calls).empty());
    EXPECT_TRUE(lint_source("src/core/transport.cpp", calls).empty());
}

TEST(LintChecks, RawIpcMatchesCallSpellingsNotNames) {
    // Variables, members and string literals that merely mention sockets are
    // fine — only the primitives themselves are banned.
    const std::string benign =
        "std::string socket = flags.at(\"socket\");\n"
        "auto link = core::connect_unix(socket_path);\n"
        "out << \"AF_UNIX path too long\";\n"
        "void socket_banner();\n";
    EXPECT_TRUE(lint_source("src/experiment/x.cpp", benign).empty());
    // The sockaddr types are banned by token, call or no call.
    EXPECT_TRUE(has_id(lint_source("src/experiment/x.cpp", "struct sockaddr_un addr;\n"),
                       "ZD014"));
    // And a reasoned suppression still works, as for every other check.
    EXPECT_TRUE(lint_source("src/experiment/x.cpp",
                            "int fd = socket(2, 1, 0);  "
                            "// zerodeg-lint: allow(ZD014): legacy probe\n")
                    .empty());
}

TEST(LintChecks, UnorderedIterationFeedingWriterIsAnError) {
    const std::string src =
        "#include <unordered_map>\n"
        "std::unordered_map<std::string, int> counts;\n"
        "void dump(std::ostream& out) {\n"
        "  core::CsvWriter w(out);\n"
        "  for (const auto& kv : counts) {\n"
        "    w.write_row({kv.first});\n"
        "  }\n"
        "}\n";
    const auto diags = lint_source("src/experiment/x.cpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD005");
    EXPECT_EQ(diags[0].line, 5u);
    EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintChecks, UnorderedIterationWithoutWriterIsAWarning) {
    const std::string src =
        "std::unordered_map<int, int> m;\n"
        "int total() {\n"
        "  int s = 0;\n"
        "  for (const auto& kv : m) s += kv.second;\n"
        "  return s;\n"
        "}\n";
    const auto diags = lint_source("src/experiment/x.cpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD005");
    EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(LintChecks, OrderedMapIterationIsFine) {
    const std::string src =
        "std::map<std::string, int> counts;\n"
        "void dump(std::ostream& out) {\n"
        "  core::CsvWriter w(out);\n"
        "  for (const auto& kv : counts) w.write_row({kv.first});\n"
        "}\n";
    EXPECT_TRUE(lint_source("src/experiment/x.cpp", src).empty());
}

TEST(LintChecks, CountingLoopOverUnorderedSizeIsFine) {
    const std::string src =
        "std::unordered_map<int, int> m;\n"
        "int f() {\n"
        "  int s = 0;\n"
        "  for (std::size_t i = 0; i < m.size(); ++i) s += 1;\n"
        "  return s;\n"
        "}\n";
    EXPECT_TRUE(lint_source("src/experiment/x.cpp", src).empty());
}

TEST(LintChecks, UnorderedReductionPrimitives) {
    EXPECT_TRUE(has_id(
        lint_source("src/experiment/x.cpp",
                    "double s = std::reduce(v.begin(), v.end(), 0.0);\n"),
        "ZD006"));
    EXPECT_TRUE(has_id(
        lint_source("src/experiment/x.cpp",
                    "std::for_each(std::execution::par, v.begin(), v.end(), f);\n"),
        "ZD006"));
    EXPECT_TRUE(has_id(lint_source("src/experiment/x.cpp",
                                   "#pragma omp parallel for reduction(+:sum)\n"),
                       "ZD006"));
}

TEST(LintChecks, RawEngineOnlyInCore) {
    const std::string src = "std::mt19937 gen(42);\n";
    EXPECT_EQ(ids_of(lint_source("src/faults/x.cpp", src)), std::vector<std::string>{"ZD007"});
    EXPECT_TRUE(lint_source("src/core/rng.cpp", src).empty());
    EXPECT_TRUE(has_id(lint_source("tests/x.cpp", "std::normal_distribution<double> d;\n"),
                       "ZD007"));
}

TEST(LintChecks, HeaderMustStartWithPragmaOnce) {
    EXPECT_EQ(ids_of(lint_source("src/core/x.hpp", "#include <vector>\nint f();\n")),
              std::vector<std::string>{"ZD008"});
    // Comments before the pragma are fine.
    EXPECT_TRUE(
        lint_source("src/core/x.hpp", "// Long banner comment.\n#pragma once\nint f();\n")
            .empty());
    // Non-headers are exempt.
    EXPECT_TRUE(lint_source("src/core/x.cpp", "#include <vector>\nint f();\n").empty());
}

TEST(LintChecks, UsingNamespaceInHeader) {
    const std::string src = "#pragma once\nusing namespace std;\n";
    EXPECT_EQ(ids_of(lint_source("src/core/x.hpp", src)), std::vector<std::string>{"ZD009"});
    EXPECT_TRUE(lint_source("src/core/x.cpp", "using namespace std::chrono_literals;\n").empty());
}

TEST(LintChecks, ErrorCodeReturnNeedsNodiscard) {
    const auto diags = lint_source("src/monitoring/x.hpp",
                                   "#pragma once\nErrorCode flush_buffer(int attempts);\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD010");
    EXPECT_EQ(diags[0].severity, Severity::kWarning);
    EXPECT_TRUE(lint_source("src/monitoring/x.hpp",
                            "#pragma once\n[[nodiscard]] ErrorCode flush_buffer(int attempts);\n")
                    .empty());
    // Parameters and enum mentions are not return types.
    EXPECT_TRUE(lint_source("src/monitoring/x.hpp",
                            "#pragma once\nvoid log_failure(ErrorCode code);\n")
                    .empty());
}

TEST(LintChecks, ArithmeticOperatorNeedsNodiscardInHeaders) {
    const std::string src =
        "#pragma once\n"
        "class Celsius {\n"
        "  constexpr Celsius operator+(Celsius rhs) const;\n"
        "};\n";
    const auto diags = lint_source("src/core/x.hpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD011");
    EXPECT_EQ(diags[0].line, 3u);
    EXPECT_EQ(diags[0].severity, Severity::kWarning);
    // Marked operators, compound assignment, and reference returns are fine.
    EXPECT_TRUE(lint_source("src/core/x.hpp",
                            "#pragma once\n"
                            "class Celsius {\n"
                            "  [[nodiscard]] constexpr Celsius operator+(Celsius rhs) const;\n"
                            "  constexpr Celsius& operator+=(Celsius rhs);\n"
                            "  constexpr auto operator<=>(const Celsius&) const = default;\n"
                            "};\n")
                    .empty());
    // Non-headers are exempt (definitions there mirror a checked header).
    EXPECT_TRUE(
        lint_source("src/core/x.cpp", "Celsius Celsius::operator+(Celsius rhs) const {}\n")
            .empty());
}

TEST(LintChecks, DurableWriterModulesMustUseTheIoSeam) {
    const std::string ofs = "void f() { std::ofstream out(\"fig.csv\"); }\n";
    const std::string fop = "void f() { FILE* f = fopen(\"log.txt\", \"wb\"); }\n";
    // src/experiment/ and src/monitoring/ own the crash-surviving files, so
    // a direct write there escapes fault injection: error ZD012.
    EXPECT_EQ(ids_of(lint_source("src/experiment/figures.cpp", ofs)),
              std::vector<std::string>{"ZD012"});
    EXPECT_EQ(ids_of(lint_source("src/monitoring/datalogger.cpp", fop)),
              std::vector<std::string>{"ZD012"});
    EXPECT_EQ(lint_source("src/experiment/x.cpp", ofs)[0].severity, Severity::kError);
    // core/io (the seam itself), tools, tests, and other modules are exempt.
    EXPECT_TRUE(lint_source("src/core/io.cpp", fop).empty());
    EXPECT_TRUE(lint_source("tools/zerodeg_cli.cpp", ofs).empty());
    EXPECT_TRUE(lint_source("tests/test_figures.cpp", ofs).empty());
    EXPECT_TRUE(lint_source("src/weather/trace_io.cpp", ofs).empty());
    // Reads stay legal: the seam governs durable writes only.
    EXPECT_TRUE(
        lint_source("src/experiment/x.cpp", "void f() { std::ifstream in(\"t.csv\"); }\n")
            .empty());
    // Mentions in comments or strings are not code.
    EXPECT_TRUE(lint_source("src/experiment/x.cpp",
                            "// ofstream is banned here (ZD012)\n"
                            "const char* kHint = \"use ofstream elsewhere\";\n")
                    .empty());
}

TEST(LintSuppressions, TrailingAllowWithReasonSuppresses) {
    const std::string src =
        "void f() { std::random_device rd; }  "
        "// zerodeg-lint: allow(ZD002): synthetic example exercising entropy plumbing\n";
    EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppressions, CommentOnOwnLineAppliesToNextLine) {
    const std::string src =
        "// zerodeg-lint: allow(ZD002): documented one-off seed probe\n"
        "void f() { std::random_device rd; }\n";
    EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppressions, MissingReasonDoesNotSuppressAndIsFlagged) {
    const std::string src =
        "void f() { std::random_device rd; }  // zerodeg-lint: allow(ZD002)\n";
    const auto diags = lint_source("src/core/x.cpp", src);
    EXPECT_TRUE(has_id(diags, "ZD002"));  // the allowance is void without a reason
    EXPECT_TRUE(has_id(diags, "ZD098"));
}

TEST(LintSuppressions, UnknownCheckIdIsFlagged) {
    const std::string src =
        "int x = 1;  // zerodeg-lint: allow(ZD742): no such check\n";
    const auto diags = lint_source("src/core/x.cpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD099");
}

TEST(LintSuppressions, WrongIdDoesNotSuppress) {
    const std::string src =
        "void f() { std::random_device rd; }  "
        "// zerodeg-lint: allow(ZD001): suppresses the wrong check\n";
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", src), "ZD002"));
}

TEST(LintLexer, TokensInsideLiteralsAndCommentsAreIgnored) {
    const std::string src =
        "const char* docs = \"never call std::random_device or time(nullptr)\";\n"
        "// std::rand() would be flagged if this comment were code\n"
        "/* std::mt19937 likewise */\n"
        "const char* raw = R\"(std::random_device)\";\n";
    EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintLexer, DigitSeparatorsAreNotCharLiterals) {
    // A naive lexer treats 657'000'000 as opening a char literal and blanks
    // the rest of the line — which would hide the random_device after it.
    const std::string src =
        "void f() { long n = 657'000'000; std::random_device rd; }\n";
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", src), "ZD002"));
}

TEST(LintBaseline, RoundTripAndContains) {
    const auto diags = lint_source("src/faults/x.cpp", "int f() { return std::rand(); }\n");
    ASSERT_EQ(diags.size(), 1u);

    Baseline b;
    EXPECT_FALSE(b.contains(diags[0]));
    b.add(diags[0]);
    EXPECT_TRUE(b.contains(diags[0]));

    const Baseline reparsed = Baseline::parse(b.serialize());
    EXPECT_EQ(reparsed.size(), 1u);
    EXPECT_TRUE(reparsed.contains(diags[0]));
}

TEST(LintBaseline, FingerprintIsLineShiftStable) {
    const std::string line = "int f() { return std::rand(); }\n";
    const auto at_top = lint_source("src/faults/x.cpp", line);
    const auto shifted = lint_source("src/faults/x.cpp", "\n\n\n" + line);
    ASSERT_EQ(at_top.size(), 1u);
    ASSERT_EQ(shifted.size(), 1u);
    EXPECT_NE(at_top[0].line, shifted[0].line);
    EXPECT_EQ(at_top[0].fingerprint, shifted[0].fingerprint);

    Baseline b;
    b.add(at_top[0]);
    EXPECT_TRUE(b.contains(shifted[0]));
}

TEST(LintBaseline, MalformedEntryThrowsParseError) {
    EXPECT_THROW(static_cast<void>(Baseline::parse("ZD001 nothex src/x.cpp\n")),
                 core::ParseError);
    EXPECT_THROW(static_cast<void>(Baseline::parse("ZD742 0123456789abcdef src/x.cpp\n")),
                 core::ParseError);
    // Comments and blank lines are fine.
    EXPECT_EQ(Baseline::parse("# header\n\n").size(), 0u);
}

TEST(LintApi, CheckTableIsConsistent) {
    const auto& checks = known_checks();
    EXPECT_GE(checks.size(), 12u);
    for (const auto& c : checks) EXPECT_TRUE(is_known_check(c.id));
    EXPECT_FALSE(is_known_check("ZD742"));
    // Diagnostics always carry known ids.
    for (const Diagnostic& d :
         lint_source("src/core/x.cpp", "void f() { std::random_device rd; }\n")) {
        EXPECT_TRUE(is_known_check(d.id));
    }
}

TEST(LintApi, FormatDiagnosticShape) {
    const auto diags = lint_source("src/faults/x.cpp", "int f() { return std::rand(); }\n");
    ASSERT_EQ(diags.size(), 1u);
    const std::string text = format_diagnostic(diags[0]);
    EXPECT_NE(text.find("src/faults/x.cpp:1:"), std::string::npos);
    EXPECT_NE(text.find("[ZD001]"), std::string::npos);
    EXPECT_NE(text.find("[error]"), std::string::npos);
    EXPECT_NE(text.find("hint:"), std::string::npos);
}

}  // namespace
}  // namespace zerodeg::lint
