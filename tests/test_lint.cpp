// Unit tests for tools/lint — one synthetic snippet per check id, plus the
// suppression grammar, the meta checks (ZD097/ZD098/ZD099), the baseline
// round-trip, and the whole-project pass (ZD015–ZD018) driven over in-memory
// fixture trees.  These exercise the checker API directly; the tree-wide
// gates are the separate `lint_tree`/`lint_project` CTests
// (tools/CMakeLists.txt).
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "lint/project.hpp"

namespace zerodeg::lint {
namespace {

[[nodiscard]] std::vector<std::string> ids_of(const std::vector<Diagnostic>& diags) {
    std::vector<std::string> ids;
    ids.reserve(diags.size());
    for (const Diagnostic& d : diags) ids.push_back(d.id);
    return ids;
}

[[nodiscard]] bool has_id(const std::vector<Diagnostic>& diags, std::string_view id) {
    return std::any_of(diags.begin(), diags.end(),
                       [&](const Diagnostic& d) { return d.id == id; });
}

TEST(LintChecks, BannedCRand) {
    const auto diags = lint_source("src/faults/x.cpp", "int f() { return std::rand(); }\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD001");
    EXPECT_EQ(diags[0].line, 1u);
    EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintChecks, RandomDevice) {
    const auto diags =
        lint_source("src/weather/x.cpp", "void f() {\n  std::random_device rd;\n}\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD002");
    EXPECT_EQ(diags[0].line, 2u);
}

TEST(LintChecks, WallClockBannedOutsideMonitoring) {
    const std::string src = "auto now() { return std::chrono::system_clock::now(); }\n";
    EXPECT_EQ(ids_of(lint_source("src/experiment/x.cpp", src)),
              std::vector<std::string>{"ZD003"});
    // monitoring owns real-telemetry timestamps: same code, no finding.
    EXPECT_TRUE(lint_source("src/monitoring/x.cpp", src).empty());
}

TEST(LintChecks, CTimeSpellings) {
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", "long t = time(nullptr);\n"), "ZD003"));
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", "long t = ::time(&out);\n"), "ZD003"));
    // Project APIs that happen to be named time() are not wall clocks.
    EXPECT_TRUE(lint_source("src/core/x.cpp", "auto t = clockobj.time(0);\n").empty());
}

TEST(LintChecks, BenchClockOnlyInBenchAndTools) {
    const std::string src = "auto t0 = zerodeg::core::bench_clock::now();\n";
    // Simulation code must not touch the benchmark timing seam.
    EXPECT_EQ(ids_of(lint_source("src/experiment/x.cpp", src)),
              std::vector<std::string>{"ZD013"});
    // The sanctioned consumers: bench targets and tools.
    EXPECT_TRUE(lint_source("bench/bench_perf_tick.cpp", src).empty());
    EXPECT_TRUE(lint_source("tools/zerodeg_cli.cpp", src).empty());
}

TEST(LintChecks, BenchClockImplIsTheSanctionedSteadyClockRead) {
    // The seam's own translation unit may read steady_clock (ZD003 exempt)
    // and of course names bench_clock (ZD013 exempt).
    const std::string src =
        "auto n = std::chrono::steady_clock::now();\n"
        "bench_clock::time_point t;\n";
    EXPECT_TRUE(lint_source("src/core/bench_clock.cpp", src).empty());
    EXPECT_TRUE(lint_source("src/core/bench_clock.hpp",
                            "#pragma once\nclass bench_clock {};\n")
                    .empty());
    // Any other src/core file is still banned from both.
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", src), "ZD003"));
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", src), "ZD013"));
}

TEST(LintChecks, GetenvOnlyInTools) {
    const std::string src = "const char* v = std::getenv(\"ZERODEG_HOME\");\n";
    EXPECT_EQ(ids_of(lint_source("src/experiment/x.cpp", src)),
              std::vector<std::string>{"ZD004"});
    EXPECT_TRUE(lint_source("tools/zerodeg_cli.cpp", src).empty());
}

TEST(LintChecks, RawIpcOnlyInTheTransportSeam) {
    const std::string calls =
        "int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n"
        "FILE* p = popen(\"ls\", \"r\");\n"
        "int fds[2]; pipe(fds);\n";
    // Three lines, three findings — anywhere but the seam's own files.
    EXPECT_EQ(ids_of(lint_source("src/experiment/x.cpp", calls)),
              (std::vector<std::string>{"ZD014", "ZD014", "ZD014"}));
    EXPECT_TRUE(has_id(lint_source("tools/zerodeg_cli.cpp", calls), "ZD014"));
    EXPECT_TRUE(has_id(lint_source("tests/test_x.cpp", calls), "ZD014"));
    // The seam's implementation files are the sanctioned home.
    EXPECT_TRUE(lint_source("src/core/transport_unix.cpp", calls).empty());
    EXPECT_TRUE(lint_source("src/core/transport.cpp", calls).empty());
}

TEST(LintChecks, RawIpcMatchesCallSpellingsNotNames) {
    // Variables, members and string literals that merely mention sockets are
    // fine — only the primitives themselves are banned.
    const std::string benign =
        "std::string socket = flags.at(\"socket\");\n"
        "auto link = core::connect_unix(socket_path);\n"
        "out << \"AF_UNIX path too long\";\n"
        "void socket_banner();\n";
    EXPECT_TRUE(lint_source("src/experiment/x.cpp", benign).empty());
    // The sockaddr types are banned by token, call or no call.
    EXPECT_TRUE(has_id(lint_source("src/experiment/x.cpp", "struct sockaddr_un addr;\n"),
                       "ZD014"));
    // And a reasoned suppression still works, as for every other check.
    EXPECT_TRUE(lint_source("src/experiment/x.cpp",
                            "int fd = socket(2, 1, 0);  "
                            "// zerodeg-lint: allow(ZD014): legacy probe\n")
                    .empty());
}

TEST(LintChecks, UnorderedIterationFeedingWriterIsAnError) {
    const std::string src =
        "#include <unordered_map>\n"
        "std::unordered_map<std::string, int> counts;\n"
        "void dump(std::ostream& out) {\n"
        "  core::CsvWriter w(out);\n"
        "  for (const auto& kv : counts) {\n"
        "    w.write_row({kv.first});\n"
        "  }\n"
        "}\n";
    const auto diags = lint_source("src/experiment/x.cpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD005");
    EXPECT_EQ(diags[0].line, 5u);
    EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintChecks, UnorderedIterationWithoutWriterIsAWarning) {
    const std::string src =
        "std::unordered_map<int, int> m;\n"
        "int total() {\n"
        "  int s = 0;\n"
        "  for (const auto& kv : m) s += kv.second;\n"
        "  return s;\n"
        "}\n";
    const auto diags = lint_source("src/experiment/x.cpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD005");
    EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(LintChecks, OrderedMapIterationIsFine) {
    const std::string src =
        "std::map<std::string, int> counts;\n"
        "void dump(std::ostream& out) {\n"
        "  core::CsvWriter w(out);\n"
        "  for (const auto& kv : counts) w.write_row({kv.first});\n"
        "}\n";
    EXPECT_TRUE(lint_source("src/experiment/x.cpp", src).empty());
}

TEST(LintChecks, CountingLoopOverUnorderedSizeIsFine) {
    const std::string src =
        "std::unordered_map<int, int> m;\n"
        "int f() {\n"
        "  int s = 0;\n"
        "  for (std::size_t i = 0; i < m.size(); ++i) s += 1;\n"
        "  return s;\n"
        "}\n";
    EXPECT_TRUE(lint_source("src/experiment/x.cpp", src).empty());
}

TEST(LintChecks, UnorderedReductionPrimitives) {
    EXPECT_TRUE(has_id(
        lint_source("src/experiment/x.cpp",
                    "double s = std::reduce(v.begin(), v.end(), 0.0);\n"),
        "ZD006"));
    EXPECT_TRUE(has_id(
        lint_source("src/experiment/x.cpp",
                    "std::for_each(std::execution::par, v.begin(), v.end(), f);\n"),
        "ZD006"));
    EXPECT_TRUE(has_id(lint_source("src/experiment/x.cpp",
                                   "#pragma omp parallel for reduction(+:sum)\n"),
                       "ZD006"));
}

TEST(LintChecks, RawEngineOnlyInCore) {
    const std::string src = "std::mt19937 gen(42);\n";
    EXPECT_EQ(ids_of(lint_source("src/faults/x.cpp", src)), std::vector<std::string>{"ZD007"});
    EXPECT_TRUE(lint_source("src/core/rng.cpp", src).empty());
    EXPECT_TRUE(has_id(lint_source("tests/x.cpp", "std::normal_distribution<double> d;\n"),
                       "ZD007"));
}

TEST(LintChecks, HeaderMustStartWithPragmaOnce) {
    EXPECT_EQ(ids_of(lint_source("src/core/x.hpp", "#include <vector>\nint f();\n")),
              std::vector<std::string>{"ZD008"});
    // Comments before the pragma are fine.
    EXPECT_TRUE(
        lint_source("src/core/x.hpp", "// Long banner comment.\n#pragma once\nint f();\n")
            .empty());
    // Non-headers are exempt.
    EXPECT_TRUE(lint_source("src/core/x.cpp", "#include <vector>\nint f();\n").empty());
}

TEST(LintChecks, UsingNamespaceInHeader) {
    const std::string src = "#pragma once\nusing namespace std;\n";
    EXPECT_EQ(ids_of(lint_source("src/core/x.hpp", src)), std::vector<std::string>{"ZD009"});
    EXPECT_TRUE(lint_source("src/core/x.cpp", "using namespace std::chrono_literals;\n").empty());
}

TEST(LintChecks, ErrorCodeReturnNeedsNodiscard) {
    const auto diags = lint_source("src/monitoring/x.hpp",
                                   "#pragma once\nErrorCode flush_buffer(int attempts);\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD010");
    EXPECT_EQ(diags[0].severity, Severity::kWarning);
    EXPECT_TRUE(lint_source("src/monitoring/x.hpp",
                            "#pragma once\n[[nodiscard]] ErrorCode flush_buffer(int attempts);\n")
                    .empty());
    // Parameters and enum mentions are not return types.
    EXPECT_TRUE(lint_source("src/monitoring/x.hpp",
                            "#pragma once\nvoid log_failure(ErrorCode code);\n")
                    .empty());
}

TEST(LintChecks, ArithmeticOperatorNeedsNodiscardInHeaders) {
    const std::string src =
        "#pragma once\n"
        "class Celsius {\n"
        "  constexpr Celsius operator+(Celsius rhs) const;\n"
        "};\n";
    const auto diags = lint_source("src/core/x.hpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD011");
    EXPECT_EQ(diags[0].line, 3u);
    EXPECT_EQ(diags[0].severity, Severity::kWarning);
    // Marked operators, compound assignment, and reference returns are fine.
    EXPECT_TRUE(lint_source("src/core/x.hpp",
                            "#pragma once\n"
                            "class Celsius {\n"
                            "  [[nodiscard]] constexpr Celsius operator+(Celsius rhs) const;\n"
                            "  constexpr Celsius& operator+=(Celsius rhs);\n"
                            "  constexpr auto operator<=>(const Celsius&) const = default;\n"
                            "};\n")
                    .empty());
    // Non-headers are exempt (definitions there mirror a checked header).
    EXPECT_TRUE(
        lint_source("src/core/x.cpp", "Celsius Celsius::operator+(Celsius rhs) const {}\n")
            .empty());
}

TEST(LintChecks, DurableWriterModulesMustUseTheIoSeam) {
    const std::string ofs = "void f() { std::ofstream out(\"fig.csv\"); }\n";
    const std::string fop = "void f() { FILE* f = fopen(\"log.txt\", \"wb\"); }\n";
    // src/experiment/ and src/monitoring/ own the crash-surviving files, so
    // a direct write there escapes fault injection: error ZD012.
    EXPECT_EQ(ids_of(lint_source("src/experiment/figures.cpp", ofs)),
              std::vector<std::string>{"ZD012"});
    EXPECT_EQ(ids_of(lint_source("src/monitoring/datalogger.cpp", fop)),
              std::vector<std::string>{"ZD012"});
    EXPECT_EQ(lint_source("src/experiment/x.cpp", ofs)[0].severity, Severity::kError);
    // core/io (the seam itself), tools, tests, and other modules are exempt.
    EXPECT_TRUE(lint_source("src/core/io.cpp", fop).empty());
    EXPECT_TRUE(lint_source("tools/zerodeg_cli.cpp", ofs).empty());
    EXPECT_TRUE(lint_source("tests/test_figures.cpp", ofs).empty());
    EXPECT_TRUE(lint_source("src/weather/trace_io.cpp", ofs).empty());
    // Reads stay legal: the seam governs durable writes only.
    EXPECT_TRUE(
        lint_source("src/experiment/x.cpp", "void f() { std::ifstream in(\"t.csv\"); }\n")
            .empty());
    // Mentions in comments or strings are not code.
    EXPECT_TRUE(lint_source("src/experiment/x.cpp",
                            "// ofstream is banned here (ZD012)\n"
                            "const char* kHint = \"use ofstream elsewhere\";\n")
                    .empty());
}

TEST(LintSuppressions, TrailingAllowWithReasonSuppresses) {
    const std::string src =
        "void f() { std::random_device rd; }  "
        "// zerodeg-lint: allow(ZD002): synthetic example exercising entropy plumbing\n";
    EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppressions, CommentOnOwnLineAppliesToNextLine) {
    const std::string src =
        "// zerodeg-lint: allow(ZD002): documented one-off seed probe\n"
        "void f() { std::random_device rd; }\n";
    EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppressions, MissingReasonDoesNotSuppressAndIsFlagged) {
    const std::string src =
        "void f() { std::random_device rd; }  // zerodeg-lint: allow(ZD002)\n";
    const auto diags = lint_source("src/core/x.cpp", src);
    EXPECT_TRUE(has_id(diags, "ZD002"));  // the allowance is void without a reason
    EXPECT_TRUE(has_id(diags, "ZD098"));
}

TEST(LintSuppressions, UnknownCheckIdIsFlagged) {
    const std::string src =
        "int x = 1;  // zerodeg-lint: allow(ZD742): no such check\n";
    const auto diags = lint_source("src/core/x.cpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD099");
}

TEST(LintSuppressions, WrongIdDoesNotSuppress) {
    const std::string src =
        "void f() { std::random_device rd; }  "
        "// zerodeg-lint: allow(ZD001): suppresses the wrong check\n";
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", src), "ZD002"));
}

TEST(LintLexer, TokensInsideLiteralsAndCommentsAreIgnored) {
    const std::string src =
        "const char* docs = \"never call std::random_device or time(nullptr)\";\n"
        "// std::rand() would be flagged if this comment were code\n"
        "/* std::mt19937 likewise */\n"
        "const char* raw = R\"(std::random_device)\";\n";
    EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintLexer, DigitSeparatorsAreNotCharLiterals) {
    // A naive lexer treats 657'000'000 as opening a char literal and blanks
    // the rest of the line — which would hide the random_device after it.
    const std::string src =
        "void f() { long n = 657'000'000; std::random_device rd; }\n";
    EXPECT_TRUE(has_id(lint_source("src/core/x.cpp", src), "ZD002"));
}

TEST(LintBaseline, RoundTripAndContains) {
    const auto diags = lint_source("src/faults/x.cpp", "int f() { return std::rand(); }\n");
    ASSERT_EQ(diags.size(), 1u);

    Baseline b;
    EXPECT_FALSE(b.contains(diags[0]));
    b.add(diags[0]);
    EXPECT_TRUE(b.contains(diags[0]));

    const Baseline reparsed = Baseline::parse(b.serialize());
    EXPECT_EQ(reparsed.size(), 1u);
    EXPECT_TRUE(reparsed.contains(diags[0]));
}

TEST(LintBaseline, FingerprintIsLineShiftStable) {
    const std::string line = "int f() { return std::rand(); }\n";
    const auto at_top = lint_source("src/faults/x.cpp", line);
    const auto shifted = lint_source("src/faults/x.cpp", "\n\n\n" + line);
    ASSERT_EQ(at_top.size(), 1u);
    ASSERT_EQ(shifted.size(), 1u);
    EXPECT_NE(at_top[0].line, shifted[0].line);
    EXPECT_EQ(at_top[0].fingerprint, shifted[0].fingerprint);

    Baseline b;
    b.add(at_top[0]);
    EXPECT_TRUE(b.contains(shifted[0]));
}

TEST(LintBaseline, MalformedEntryThrowsParseError) {
    EXPECT_THROW(static_cast<void>(Baseline::parse("ZD001 nothex src/x.cpp\n")),
                 core::ParseError);
    EXPECT_THROW(static_cast<void>(Baseline::parse("ZD742 0123456789abcdef src/x.cpp\n")),
                 core::ParseError);
    // Comments and blank lines are fine.
    EXPECT_EQ(Baseline::parse("# header\n\n").size(), 0u);
}

TEST(LintApi, CheckTableIsConsistent) {
    const auto& checks = known_checks();
    EXPECT_GE(checks.size(), 12u);
    for (const auto& c : checks) EXPECT_TRUE(is_known_check(c.id));
    EXPECT_FALSE(is_known_check("ZD742"));
    // Diagnostics always carry known ids.
    for (const Diagnostic& d :
         lint_source("src/core/x.cpp", "void f() { std::random_device rd; }\n")) {
        EXPECT_TRUE(is_known_check(d.id));
    }
}

TEST(LintSuppressions, StaleAllowanceIsFlaggedZD097) {
    // The line no longer triggers ZD002 (the random_device is gone), so the
    // reasoned waiver is stale and must fail rather than rot silently.
    const std::string src =
        "int x = 1;  // zerodeg-lint: allow(ZD002): was an entropy probe once\n";
    const auto diags = lint_source("src/core/x.cpp", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "ZD097");
    EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintSuppressions, InUseAllowanceIsNotStale) {
    // Same waiver, but the line really does trigger ZD002: no ZD097.
    const std::string src =
        "void f() { std::random_device rd; }  "
        "// zerodeg-lint: allow(ZD002): synthetic example exercising entropy plumbing\n";
    EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppressions, ProjectCheckAllowancesAreLeftToTheProjectPass) {
    // The per-file pass cannot know whether ZD016 fires on this line — only
    // the whole-project pass sees the other files — so no ZD097 here.
    const std::string src =
        "auto s = core::RngStream{seed, \"x\"};  "
        "// zerodeg-lint: allow(ZD016): shared with the paired model on purpose\n";
    EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintApi, FormatDiagnosticShape) {
    const auto diags = lint_source("src/faults/x.cpp", "int f() { return std::rand(); }\n");
    ASSERT_EQ(diags.size(), 1u);
    const std::string text = format_diagnostic(diags[0]);
    EXPECT_NE(text.find("src/faults/x.cpp:1:"), std::string::npos);
    EXPECT_NE(text.find("[ZD001]"), std::string::npos);
    EXPECT_NE(text.find("[error]"), std::string::npos);
    EXPECT_NE(text.find("hint:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Whole-project pass (tools/lint/project.hpp) on in-memory fixture trees.
// ---------------------------------------------------------------------------

[[nodiscard]] ProjectModel make_model(
    const std::vector<std::pair<std::string, std::string>>& files) {
    ProjectModel model;
    for (const auto& [path, content] : files) model.files.push_back(scan_file(path, content));
    resolve_includes(model);
    return model;
}

[[nodiscard]] std::vector<std::string> project_ids(const ProjectModel& model) {
    std::vector<std::string> ids;
    for (const Diagnostic& d : analyze_project(model).diagnostics) ids.push_back(d.id);
    return ids;
}

TEST(LintProject, ModuleOfClassifiesPaths) {
    EXPECT_EQ(module_of("src/core/rng.hpp"), "core");
    EXPECT_EQ(module_of("src/weather/weather_model.cpp"), "weather");
    EXPECT_EQ(module_of("tools/lint/main.cpp"), "tools");
    EXPECT_EQ(module_of("bench/bench_perf_tick.cpp"), "bench");
    EXPECT_EQ(module_of("tests/test_lint.cpp"), "tests");
    EXPECT_EQ(module_of("examples/workload_pipeline.cpp"), "");
}

TEST(LintProject, LayerViolationCoreIncludingExperimentIsZD015) {
    const auto model = make_model({
        {"src/core/bad.hpp", "#pragma once\n#include \"experiment/runner.hpp\"\n"},
        {"src/experiment/runner.hpp", "#pragma once\n"},
    });
    const auto report = analyze_project(model);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].id, "ZD015");
    EXPECT_EQ(report.diagnostics[0].file, "src/core/bad.hpp");
    EXPECT_EQ(report.diagnostics[0].line, 2u);
    EXPECT_TRUE(report.graph.illegal.at("core").count("experiment") != 0);
}

TEST(LintProject, AllowedEdgesAreClean) {
    // hardware -> thermal -> weather -> core is the declared layering.
    const auto model = make_model({
        {"src/core/units.hpp", "#pragma once\n"},
        {"src/weather/model.hpp", "#pragma once\n#include \"core/units.hpp\"\n"},
        {"src/thermal/rc.hpp", "#pragma once\n#include \"weather/model.hpp\"\n"},
        {"src/hardware/server.hpp", "#pragma once\n#include \"thermal/rc.hpp\"\n"},
        {"tests/test_server.cpp", "#include \"hardware/server.hpp\"\n"},
    });
    EXPECT_TRUE(analyze_project(model).diagnostics.empty());
}

TEST(LintProject, IncludeCycleIsZD015) {
    const auto model = make_model({
        {"src/core/a.hpp", "#pragma once\n#include \"core/b.hpp\"\n"},
        {"src/core/b.hpp", "#pragma once\n#include \"core/a.hpp\"\n"},
    });
    const auto report = analyze_project(model);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].id, "ZD015");
    EXPECT_NE(report.diagnostics[0].message.find("cycle"), std::string::npos);
    ASSERT_EQ(report.graph.cycles.size(), 1u);
    EXPECT_EQ(report.graph.cycles[0].size(), 2u);
}

TEST(LintProject, UndeclaredSrcModuleIsZD015) {
    // A new src/ subsystem must be added to the layer table deliberately.
    const auto model = make_model({
        {"src/core/units.hpp", "#pragma once\n"},
        {"src/quantum/solver.hpp", "#pragma once\n#include \"core/units.hpp\"\n"},
    });
    const auto report = analyze_project(model);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].id, "ZD015");
    EXPECT_NE(report.diagnostics[0].message.find("not declared"), std::string::npos);
}

TEST(LintProject, StreamCollisionAcrossFilesIsZD016) {
    const auto model = make_model({
        {"src/weather/w.cpp",
         "void f(std::uint64_t seed) { auto s = core::RngStream{seed, \"shared\"}; }\n"},
        {"src/faults/g.cpp",
         "void g(std::uint64_t seed) { core::RngStream s(seed, \"shared\"); }\n"},
    });
    // Both ends of the collision are reported so either site can be renamed.
    EXPECT_EQ(project_ids(model), (std::vector<std::string>{"ZD016", "ZD016"}));
}

TEST(LintProject, StreamReuseWithinOneOwningFileIsFine) {
    const auto model = make_model({
        {"src/weather/w.cpp",
         "void f(std::uint64_t seed) {\n"
         "  auto a = core::RngStream{seed, \"wind\"};\n"
         "  auto b = core::RngStream{seed, \"wind\"};\n"
         "}\n"},
    });
    EXPECT_TRUE(analyze_project(model).diagnostics.empty());
}

TEST(LintProject, MultilineStreamConstructionIsStillKeyed) {
    // clang-format wraps long constructions; the literal lands on the next
    // line but belongs to the same balanced span.
    const auto model = make_model({
        {"src/experiment/r.cpp",
         "void f(std::uint64_t seed) {\n"
         "  auto s = core::RngStream{seed,\n"
         "                           \"switch.spare\"};\n"
         "}\n"},
        {"src/hardware/h.cpp",
         "void g(std::uint64_t seed) { core::RngStream s(seed, \"switch.spare\"); }\n"},
    });
    EXPECT_EQ(project_ids(model), (std::vector<std::string>{"ZD016", "ZD016"}));
}

TEST(LintProject, TestStreamNamesDoNotCollide) {
    // tests/ reuse throwaway names ("m", "p") by design; only src/ competes
    // for the global stream namespace.
    const auto model = make_model({
        {"tests/test_a.cpp", "void f() { core::RngStream s(1, \"m\"); }\n"},
        {"tests/test_b.cpp", "void g() { core::RngStream s(1, \"m\"); }\n"},
    });
    EXPECT_TRUE(analyze_project(model).diagnostics.empty());
}

TEST(LintProject, DiscardedErrorCodeCallIsZD017) {
    const auto model = make_model({
        {"src/monitoring/collector.hpp",
         "#pragma once\n[[nodiscard]] ErrorCode flush_buffer(int attempts);\n"},
        {"src/experiment/runner.cpp",
         "void run() {\n"
         "  flush_buffer(3);\n"
         "  const auto rc = flush_buffer(3);\n"
         "  if (flush_buffer(3) != ErrorCode::kOk) { return; }\n"
         "}\n"},
    });
    const auto report = analyze_project(model);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].id, "ZD017");
    EXPECT_EQ(report.diagnostics[0].line, 2u);  // only the bare statement
    EXPECT_NE(report.diagnostics[0].message.find("flush_buffer"), std::string::npos);
}

TEST(LintProject, MemberCallDiscardIsAlsoZD017) {
    const auto model = make_model({
        {"src/core/error.hpp", "#pragma once\n[[nodiscard]] ErrorCode code() const;\n"},
        {"src/experiment/x.cpp", "void f(const Error& e) { e.code(); }\n"},
    });
    EXPECT_EQ(project_ids(model), (std::vector<std::string>{"ZD017"}));
}

TEST(LintProject, UnknownCalleesAreNotZD017) {
    const auto model = make_model({
        {"src/core/error.hpp", "#pragma once\n[[nodiscard]] ErrorCode code() const;\n"},
        {"src/experiment/x.cpp", "void f() { log_line(); cleanup_scratch(); }\n"},
    });
    EXPECT_TRUE(analyze_project(model).diagnostics.empty());
}

TEST(LintProject, FloatAccumulateOutsideParallelSeamIsZD018) {
    const auto model = make_model({
        {"src/energy/pue.cpp",
         "double f(const std::vector<double>& v) {\n"
         "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
         "}\n"},
    });
    const auto report = analyze_project(model);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].id, "ZD018");
    EXPECT_EQ(report.diagnostics[0].line, 2u);
}

TEST(LintProject, ParallelSeamAndIntegerAccumulateAreExempt) {
    const auto model = make_model({
        // The ordered-reduce seam itself may spell the primitive.
        {"src/core/parallel.hpp",
         "#pragma once\n"
         "double reduce(const std::vector<double>& v) {\n"
         "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
         "}\n"},
        // Integer accumulation is associative: fine anywhere.
        {"src/energy/count.cpp",
         "long f(const std::vector<long>& v) {\n"
         "  return std::accumulate(v.begin(), v.end(), 0L);\n"
         "}\n"},
        // A project method merely *named* accumulate is not the primitive.
        {"src/faults/census.cpp", "void g() { stats.accumulate(1.5); }\n"},
    });
    EXPECT_TRUE(analyze_project(model).diagnostics.empty());
}

TEST(LintProject, ReasonedSuppressionSilencesProjectChecks) {
    const auto model = make_model({
        {"src/weather/w.cpp",
         "void f(std::uint64_t seed) { auto s = core::RngStream{seed, \"shared\"}; }  "
         "// zerodeg-lint: allow(ZD016): twin models share draws by design\n"},
        {"src/faults/g.cpp",
         "void g(std::uint64_t seed) { core::RngStream s(seed, \"shared\"); }  "
         "// zerodeg-lint: allow(ZD016): twin models share draws by design\n"},
    });
    EXPECT_TRUE(analyze_project(model).diagnostics.empty());
}

TEST(LintProject, StaleProjectSuppressionIsZD097) {
    // The waiver names ZD016 but nothing collides: the project pass (the
    // only pass that can judge project ids) reports it stale.
    const auto model = make_model({
        {"src/weather/w.cpp",
         "void f(std::uint64_t seed) { auto s = core::RngStream{seed, \"only\"}; }  "
         "// zerodeg-lint: allow(ZD016): leftover from a renamed twin\n"},
    });
    const auto report = analyze_project(model);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].id, "ZD097");
}

TEST(LintProject, DotExportNamesModulesAndColorsIllegalEdges) {
    const auto model = make_model({
        {"src/core/bad.hpp", "#pragma once\n#include \"experiment/runner.hpp\"\n"},
        {"src/experiment/runner.hpp", "#pragma once\n#include \"core/bad.hpp\"\n"},
    });
    const auto report = analyze_project(model);
    const std::string dot = render_dot(report.graph);
    EXPECT_EQ(dot.rfind("digraph zerodeg_layers {", 0), 0u);
    EXPECT_NE(dot.find("\"core\" -> \"experiment\""), std::string::npos);
    EXPECT_NE(dot.find("color=red"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');

    const std::string summary = render_architecture_report(report.graph);
    EXPECT_NE(summary.find("fan-out"), std::string::npos);
    EXPECT_NE(summary.find("include cycles: 1"), std::string::npos);
}

TEST(LintProject, TreeLayerDagMatchesTheDesignDoc) {
    const auto& dag = layer_dag();
    EXPECT_TRUE(dag.at("core").empty());
    EXPECT_TRUE(dag.at("hardware").count("thermal") != 0);
    EXPECT_TRUE(dag.at("experiment").count("monitoring") != 0);
    // Nothing may depend on experiment (it is the top of the src/ stack).
    for (const auto& [module, deps] : dag) {
        if (module == "experiment") continue;
        EXPECT_EQ(deps.count("experiment"), 0u) << module;
    }
}

TEST(LintApi, JsonDiagnosticShapeAndEscaping) {
    Diagnostic d;
    d.file = "src/core/x.cpp";
    d.line = 3;
    d.id = "ZD001";
    d.severity = Severity::kError;
    d.message = "bad \"quote\" and\nnewline";
    const std::string json = format_diagnostic_json(d);
    EXPECT_EQ(json.rfind("{\"file\":\"src/core/x.cpp\",\"line\":3,\"id\":\"ZD001\"", 0), 0u);
    EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_EQ(json.find("hint"), std::string::npos);  // empty hint omitted
}

}  // namespace
}  // namespace zerodeg::lint
