#include "hardware/fleet.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"

namespace zerodeg::hardware {
namespace {

using core::TimePoint;

TEST(FleetTest, PaperCompositionSection34) {
    Fleet fleet = make_paper_fleet(1);
    // "we installed ten hosts from vendor A, four from B, and four from C"
    EXPECT_EQ(fleet.size(), 18u);
    EXPECT_EQ(fleet.count_vendor(Vendor::kA), 10u);
    EXPECT_EQ(fleet.count_vendor(Vendor::kB), 4u);
    EXPECT_EQ(fleet.count_vendor(Vendor::kC), 4u);
    // "a symmetric nine hosts in the basement and nine in the tent"
    EXPECT_EQ(fleet.count(Placement::kTent), 9u);
    EXPECT_EQ(fleet.count(Placement::kBasement), 9u);
}

TEST(FleetTest, PairingIsSymmetric) {
    Fleet fleet = make_paper_fleet(1);
    for (const HostRecord& rec : fleet.hosts()) {
        ASSERT_NE(rec.pair_id, 0);
        const HostRecord* twin = fleet.record(rec.pair_id);
        ASSERT_NE(twin, nullptr);
        EXPECT_EQ(twin->pair_id, rec.server->id());
        // "identical units are placed into the control group": same vendor,
        // opposite placement.
        EXPECT_EQ(twin->server->spec().vendor, rec.server->spec().vendor);
        EXPECT_NE(twin->placement, rec.placement);
        // Twins install on the same day.
        EXPECT_EQ(twin->install_date, rec.install_date);
    }
}

TEST(FleetTest, TentHostsCarryFigure2Numbers) {
    Fleet fleet = make_paper_fleet(1);
    std::set<int> tent_ids;
    for (const HostRecord& rec : fleet.hosts()) {
        if (rec.placement == Placement::kTent) tent_ids.insert(rec.server->id());
    }
    EXPECT_EQ(tent_ids, (std::set<int>{1, 2, 3, 6, 10, 11, 14, 15, 18}));
}

TEST(FleetTest, InstallPlanDates) {
    const auto plan = paper_install_plan();
    EXPECT_EQ(plan.size(), 18u);
    // First install: Feb 19 ("start of testing"); last: Mar 13 ("the last
    // of the hosts was installed March 13th").
    TimePoint first = plan[0].date, last = plan[0].date;
    for (const InstallEvent& ev : plan) {
        first = std::min(first, ev.date);
        last = std::max(last, ev.date);
    }
    EXPECT_EQ(first, TimePoint::from_date(2010, 2, 19));
    EXPECT_EQ(last, TimePoint::from_date(2010, 3, 13));
    // Host #15 (the flaky one) went in on March 10, vendor B, in the tent.
    const auto it15 = std::find_if(plan.begin(), plan.end(),
                                   [](const InstallEvent& e) { return e.host_id == 15; });
    ASSERT_NE(it15, plan.end());
    EXPECT_EQ(it15->date, TimePoint::from_date(2010, 3, 10));
    EXPECT_EQ(it15->vendor, Vendor::kB);
    EXPECT_EQ(it15->placement, Placement::kTent);
}

TEST(FleetTest, FindAndRecord) {
    Fleet fleet = make_paper_fleet(1);
    EXPECT_NE(fleet.find(15), nullptr);
    EXPECT_EQ(fleet.find(15)->name(), "host-15");
    EXPECT_EQ(fleet.find(99), nullptr);
    EXPECT_EQ(fleet.record(99), nullptr);
}

TEST(FleetTest, DuplicateIdThrows) {
    Fleet fleet = make_paper_fleet(1);
    EXPECT_THROW(fleet.add_host(15, Vendor::kB, Placement::kTent,
                                TimePoint::from_date(2010, 3, 26), 0, 1),
                 core::InvalidArgument);
}

TEST(FleetTest, PlacementChange) {
    Fleet fleet = make_paper_fleet(1);
    fleet.set_placement(15, Placement::kIndoors);
    EXPECT_EQ(fleet.record(15)->placement, Placement::kIndoors);
    EXPECT_EQ(fleet.count(Placement::kTent), 8u);
    EXPECT_THROW(fleet.set_placement(99, Placement::kTent), core::InvalidArgument);
}

TEST(FleetTest, WallPowerOnlyFromRunningHosts) {
    Fleet fleet = make_paper_fleet(1);
    EXPECT_DOUBLE_EQ(fleet.wall_power(Placement::kTent).value(), 0.0);
    fleet.find(1)->power_on(core::Celsius{0.0});
    EXPECT_GT(fleet.wall_power(Placement::kTent).value(), 50.0);
    EXPECT_DOUBLE_EQ(fleet.wall_power(Placement::kBasement).value(), 0.0);
}

TEST(FleetTest, InstalledAtRespectsDates) {
    Fleet fleet = make_paper_fleet(1);
    const auto feb20 = fleet.installed_at(Placement::kTent, TimePoint::from_date(2010, 2, 20));
    EXPECT_EQ(feb20.size(), 3u);  // hosts 01, 02, 03
    const auto mar14 = fleet.installed_at(Placement::kTent, TimePoint::from_date(2010, 3, 14));
    EXPECT_EQ(mar14.size(), 9u);
}

TEST(FleetTest, ReplacementHost19) {
    Fleet fleet = make_paper_fleet(1);
    fleet.add_host(19, Vendor::kB, Placement::kTent, TimePoint::from_date(2010, 3, 26), 0, 1,
                   /*replaces_id=*/15);
    EXPECT_EQ(fleet.size(), 19u);
    EXPECT_EQ(fleet.record(19)->replaces_id, 15);
    EXPECT_EQ(fleet.count_vendor(Vendor::kB), 5u);
}

}  // namespace
}  // namespace zerodeg::hardware
