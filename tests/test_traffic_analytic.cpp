// Closed-form queueing validation of the traffic engine.  A single-host
// TrafficEngine with exponential demands and Poisson arrivals (diurnal
// amplitude zero) *is* an M/M/1-PS queue, so its long-run mean sojourn time
// must converge to 1/(mu - lambda) and its utilization to rho = lambda/mu —
// textbook results the simulator has no way to know except by getting the
// dynamics right.  Closed-loop throughput is checked against the asymptotic
// bound min(N/(Z+R), mu), and cloning against its low-load advantage.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/sim_time.hpp"
#include "workload/ps_queue.hpp"
#include "workload/request_gen.hpp"
#include "workload/traffic.hpp"

namespace zerodeg::workload {
namespace {

using core::Duration;
using core::TimePoint;

const TimePoint kOrigin = TimePoint::from_date(2010, 2, 19);

/// Drive a TrafficEngine for `days` simulated days in ten-minute ticks —
/// the same cadence the experiment runner uses.
void drive(TrafficEngine& engine, int days) {
    const Duration tick = Duration::minutes(10);
    TimePoint t = kOrigin;
    const TimePoint end = kOrigin + Duration::days(days);
    while (t < end) {
        t = t + tick;
        engine.advance(t);
    }
}

/// One always-up host, flat Poisson arrivals: an exact M/M/1-PS system.
TrafficEngine make_mm1(double lambda, double mu, std::uint64_t seed) {
    TrafficConfig cfg;
    cfg.mode = TrafficConfig::Mode::kOpen;
    cfg.open.base_rps = lambda;
    cfg.open.diurnal_amplitude = 0.0;
    cfg.open.flash_crowds.clear();
    cfg.mean_demand_seconds = 1.0 / mu;
    cfg.service_rate = 1.0;
    cfg.deadline_seconds = 1e9;  // latency accounting only, no miss pressure
    TrafficEngine engine(cfg, seed, kOrigin);
    engine.add_host({"host1", /*in_tent=*/false, /*operational=*/nullptr,
                     /*set_load=*/nullptr});
    return engine;
}

class Mm1PsClosedForm : public ::testing::TestWithParam<double> {};

TEST_P(Mm1PsClosedForm, MeanSojournAndUtilizationMatchTheory) {
    // mu = 0.1/s keeps demands long enough that ten-minute ticks see real
    // queueing.  The sojourn variance explodes as rho -> 1 (busy periods
    // lengthen), so the heavy-load point gets a 4x longer horizon to land
    // the sample mean inside 2%.  (PS sojourn is exponential-demand
    // *insensitive*, but we use exponential demands anyway — that's the
    // engine default.)
    const double rho = GetParam();
    const double mu = 0.1;
    const double lambda = rho * mu;
    TrafficEngine engine = make_mm1(lambda, mu, /*seed=*/987654321);
    drive(engine, rho < 0.8 ? 40 : 160);

    const double expected_sojourn = 1.0 / (mu - lambda);
    const double measured_sojourn = engine.slo().mean_sojourn_seconds();
    EXPECT_NEAR(measured_sojourn, expected_sojourn, 0.02 * expected_sojourn)
        << "rho = " << rho;

    const double measured_rho = engine.mean_utilization();
    EXPECT_NEAR(measured_rho, rho, 0.02 * rho) << "rho = " << rho;

    EXPECT_EQ(engine.slo().dropped(), 0u);
    EXPECT_EQ(engine.slo().deadline_misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Rho, Mm1PsClosedForm, ::testing::Values(0.3, 0.6, 0.9),
                         [](const auto& param_info) {
                             return "rho" +
                                    std::to_string(static_cast<int>(param_info.param * 10));
                         });

TEST(ClosedLoop, ThroughputObeysAsymptoticBound) {
    // Interactive response-time law: X = N/(Z+R) when the server is not the
    // bottleneck, saturating at mu.  With N = 4, Z = 100 s, S = 10 s the
    // population bound N/(Z+S) = 0.036/s rules (mu = 0.1/s), and R stays
    // close to S, so X ~= N/(Z+S) within the queueing slack.
    TrafficConfig cfg;
    cfg.mode = TrafficConfig::Mode::kClosed;
    cfg.closed.users = 4;
    cfg.closed.think_seconds = 100.0;
    cfg.mean_demand_seconds = 10.0;
    cfg.service_rate = 1.0;
    cfg.deadline_seconds = 1e9;
    TrafficEngine engine(cfg, /*master_seed=*/13579, kOrigin);
    engine.add_host({"host1", false, nullptr, nullptr});
    drive(engine, 40);

    const double horizon = 40.0 * 86400.0;
    const double throughput = static_cast<double>(engine.slo().completed()) / horizon;
    const double mu = 1.0 / 10.0;
    const double mean_sojourn = engine.slo().mean_sojourn_seconds();
    const double bound = std::min(4.0 / (100.0 + mean_sojourn), mu);
    // The response-time law X = N/(Z+R) is exact in steady state; 5% covers
    // finite-horizon noise on a ~138k-completion run.
    EXPECT_NEAR(throughput, bound, 0.05 * bound);
    // Sanity: nowhere near server saturation.
    EXPECT_LT(throughput, 0.6 * mu);
}

TEST(ClosedLoop, SaturatesAtServiceCapacity) {
    // N = 60 eager users (Z = 1 s) against mu = 0.1/s: the server is the
    // bottleneck and throughput pins at mu, not at N/(Z+R).
    TrafficConfig cfg;
    cfg.mode = TrafficConfig::Mode::kClosed;
    cfg.closed.users = 60;
    cfg.closed.think_seconds = 1.0;
    cfg.mean_demand_seconds = 10.0;
    cfg.service_rate = 1.0;
    cfg.deadline_seconds = 1e9;
    TrafficEngine engine(cfg, /*master_seed=*/24680, kOrigin);
    engine.add_host({"host1", false, nullptr, nullptr});
    drive(engine, 20);

    const double horizon = 20.0 * 86400.0;
    const double throughput = static_cast<double>(engine.slo().completed()) / horizon;
    EXPECT_NEAR(throughput, 0.1, 0.02 * 0.1);
    EXPECT_GT(engine.mean_utilization(), 0.98);
}

TEST(Cloning, BeatsSingleDispatchAtLowLoad) {
    // At low load a clone pair completes at min(two iid sojourns): strictly
    // faster in expectation than one draw.  Same seed with and without the
    // clone flag; tent + basement host so both split sides are present.
    const auto run_one = [](bool clone) {
        TrafficConfig cfg;
        cfg.mode = TrafficConfig::Mode::kOpen;
        cfg.open.base_rps = 0.002;  // rho ~= 0.02 per host: near-idle
        cfg.open.diurnal_amplitude = 0.0;
        cfg.open.flash_crowds.clear();
        cfg.mean_demand_seconds = 10.0;
        cfg.service_rate = 1.0;
        cfg.deadline_seconds = 1e9;
        cfg.clone_across_split = clone;
        TrafficEngine engine(cfg, /*master_seed=*/11223344, kOrigin);
        engine.add_host({"tent1", /*in_tent=*/true, nullptr, nullptr});
        engine.add_host({"cellar1", /*in_tent=*/false, nullptr, nullptr});
        drive(engine, 40);
        return engine.slo().mean_sojourn_seconds();
    };

    const double cloned = run_one(true);
    const double single = run_one(false);
    // E[min(X,Y)] = 5 s vs E[X] = 10 s for near-idle exponential service;
    // require a decisive (>25%) improvement rather than the full 50% to
    // absorb sampling noise and the rare in-flight overlap.
    EXPECT_LT(cloned, 0.75 * single) << "cloned " << cloned << " vs single " << single;
}

TEST(Cloning, CancelsTheSlowerSibling) {
    TrafficConfig cfg;
    cfg.open.base_rps = 0.01;
    cfg.open.diurnal_amplitude = 0.0;
    cfg.open.flash_crowds.clear();
    cfg.mean_demand_seconds = 5.0;
    cfg.clone_across_split = true;
    TrafficEngine engine(cfg, /*master_seed=*/5, kOrigin);
    engine.add_host({"tent1", true, nullptr, nullptr});
    engine.add_host({"cellar1", false, nullptr, nullptr});
    drive(engine, 10);

    EXPECT_GT(engine.slo().completed(), 0u);
    // Every completed request had exactly one sibling cancelled, and every
    // dispatched request placed a clone on each side of the split.
    EXPECT_EQ(engine.clones_cancelled(), engine.slo().completed());
    EXPECT_EQ(engine.clones_issued(), 2 * engine.requests_issued());
    EXPECT_EQ(engine.in_flight(), engine.requests_issued() - engine.slo().completed());
}

TEST(PsQueue, SharesCapacityExactly) {
    // Two unit-demand jobs admitted together at rate 1: both finish at t = 2
    // (each sees rate 1/2).  A third admitted at t = 2 runs alone.
    PsQueue q(/*service_rate=*/1.0);
    q.admit(1, 1.0, 0.0);
    q.admit(2, 1.0, 0.0);
    std::vector<PsQueue::Completion> done;
    q.advance_to(3.0, done);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(done[0].time, 2.0);
    EXPECT_DOUBLE_EQ(done[1].time, 2.0);
    EXPECT_EQ(done[0].id, 1u);  // admission order breaks the tie
    EXPECT_EQ(done[1].id, 2u);

    done.clear();
    q.admit(3, 0.5, 3.0);
    q.advance_to(4.0, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_DOUBLE_EQ(done[0].time, 3.5);
}

TEST(ArrivalRate, DiurnalAndFlashCrowdCompose) {
    OpenLoopConfig cfg;
    cfg.base_rps = 1.0;
    cfg.diurnal_amplitude = 0.5;
    cfg.peak_hour = 12.0;
    const TimePoint noon = TimePoint::from_civil({2010, 3, 1, 12, 0, 0});
    const TimePoint midnight = TimePoint::from_date(2010, 3, 1);
    EXPECT_NEAR(arrival_rate(cfg, noon), 1.5, 1e-9);
    EXPECT_NEAR(arrival_rate(cfg, midnight), 0.5, 1e-9);

    cfg.flash_crowds = {{noon, core::Duration::hours(1), 4.0}};
    EXPECT_NEAR(arrival_rate(cfg, noon), 6.0, 1e-9);          // inside: x4
    EXPECT_NEAR(arrival_rate(cfg, midnight), 0.5, 1e-9);      // outside
    const TimePoint after = noon + core::Duration::hours(1);  // half-open end
    EXPECT_LT(arrival_rate(cfg, after), 2.0);
}

}  // namespace
}  // namespace zerodeg::workload
