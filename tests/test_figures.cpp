#include "experiment/figures.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/csv.hpp"
#include "core/error.hpp"

namespace zerodeg::experiment {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("zerodeg_figs_" + std::to_string(::getpid()));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

ExperimentConfig tiny_config() {
    ExperimentConfig cfg;
    cfg.end = core::TimePoint::from_date(2010, 2, 22);
    cfg.logger_start = core::TimePoint::from_date(2010, 2, 20);
    cfg.load.corpus.total_bytes = 64 * 1024;
    cfg.load.target_blocks = 20;
    return cfg;
}

TEST(Figures, ExportsAllFiles) {
    TempDir dir;
    ExperimentRunner run(tiny_config());
    run.run();
    const auto written = export_figure_data(run, dir.path.string());
    EXPECT_EQ(written.size(), 8u);  // 7 figure series + collection.csv
    for (const std::string& path : written) {
        EXPECT_TRUE(fs::exists(path)) << path;
        // faults.log is legitimately empty on a quiet three-day run.
        if (path.find("faults.log") == std::string::npos) {
            EXPECT_GT(fs::file_size(path), 0u) << path;
        }
    }
}

TEST(Figures, SeriesRoundTripThroughCsv) {
    TempDir dir;
    ExperimentRunner run(tiny_config());
    run.run();
    (void)export_figure_data(run, dir.path.string());

    std::ifstream in(dir.path / "fig3_outside_temp.csv");
    const core::TimeSeries series = core::read_series_csv(in);
    EXPECT_EQ(series.size(), run.station().temperature_series().size());
    EXPECT_NEAR(series.front().value, run.station().temperature_series().front().value, 1e-4);
}

TEST(Figures, TentSeriesHaveOutliersRemoved) {
    TempDir dir;
    ExperimentConfig cfg = tiny_config();
    cfg.end = core::TimePoint::from_date(2010, 3, 2);
    cfg.readout_interval = core::Duration::days(3);
    ExperimentRunner run(cfg);
    run.run();
    (void)export_figure_data(run, dir.path.string());

    std::ifstream in(dir.path / "fig3_tent_temp.csv");
    const core::TimeSeries tent = core::read_series_csv(in);
    EXPECT_LT(tent.size(), run.tent_logger().temperature_series().size());
}

TEST(Figures, MissingDirectoryThrows) {
    ExperimentRunner run(tiny_config());
    run.run();
    EXPECT_THROW((void)export_figure_data(run, "/nonexistent/zerodeg/dir"), core::IoError);
}

}  // namespace
}  // namespace zerodeg::experiment
