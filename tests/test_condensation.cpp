#include "thermal/condensation.hpp"

#include <gtest/gtest.h>

namespace zerodeg::thermal {
namespace {

using core::Celsius;
using core::RelHumidity;
using core::TimePoint;

TimePoint at(std::int64_t s) { return TimePoint{s}; }

TEST(Condensation, SafeObservationsProduceNoEvents) {
    CondensationAnalyzer a(Celsius{1.0});
    for (int i = 0; i < 10; ++i) {
        a.observe(at(i * 600), Celsius{10.0}, Celsius{0.0}, RelHumidity{70.0});
    }
    a.finish(at(6000));
    EXPECT_TRUE(a.events().empty());
    EXPECT_FALSE(a.condensation_occurred());
    EXPECT_EQ(a.observations(), 10u);
}

TEST(Condensation, ExcursionBecomesOneEvent) {
    CondensationAnalyzer a(Celsius{1.0});
    a.observe(at(0), Celsius{10.0}, Celsius{5.0}, RelHumidity{70.0});   // safe
    a.observe(at(600), Celsius{-10.0}, Celsius{8.0}, RelHumidity{90.0});   // condensing
    a.observe(at(1200), Celsius{-12.0}, Celsius{8.0}, RelHumidity{90.0});  // worse
    a.observe(at(1800), Celsius{15.0}, Celsius{5.0}, RelHumidity{60.0});   // safe again
    a.finish(at(1800));
    ASSERT_EQ(a.events().size(), 1u);
    const CondensationEvent& e = a.events()[0];
    EXPECT_EQ(e.start, at(600));
    EXPECT_EQ(e.end, at(1800));
    EXPECT_LT(e.worst_margin.value(), -10.0);
    EXPECT_TRUE(a.condensation_occurred());
}

TEST(Condensation, OpenEventClosedByFinish) {
    CondensationAnalyzer a(Celsius{1.0});
    a.observe(at(0), Celsius{-10.0}, Celsius{8.0}, RelHumidity{90.0});
    EXPECT_TRUE(a.events().empty());
    a.finish(at(1000));
    ASSERT_EQ(a.events().size(), 1u);
    EXPECT_EQ(a.events()[0].end, at(1000));
}

TEST(Condensation, NearMissCountsAsEventNotCondensation) {
    CondensationAnalyzer a(Celsius{2.0});
    // Margin ~ +1.2: inside the 2-degree safety band but above zero.
    a.observe(at(0), Celsius{7.0}, Celsius{8.0}, RelHumidity{85.0});
    a.observe(at(600), Celsius{20.0}, Celsius{8.0}, RelHumidity{50.0});
    EXPECT_EQ(a.events().size(), 1u);
    EXPECT_FALSE(a.condensation_occurred());
}

TEST(Condensation, MarginSeriesRecordsEverything) {
    CondensationAnalyzer a;
    a.observe(at(0), Celsius{10.0}, Celsius{0.0}, RelHumidity{50.0});
    a.observe(at(600), Celsius{12.0}, Celsius{0.0}, RelHumidity{50.0});
    EXPECT_EQ(a.margin_series().size(), 2u);
    EXPECT_GT(a.margin_series()[1].value, a.margin_series()[0].value);
}

TEST(Condensation, TwoSeparateExcursions) {
    CondensationAnalyzer a(Celsius{1.0});
    a.observe(at(0), Celsius{-5.0}, Celsius{5.0}, RelHumidity{90.0});
    a.observe(at(600), Celsius{20.0}, Celsius{5.0}, RelHumidity{40.0});
    a.observe(at(1200), Celsius{-5.0}, Celsius{5.0}, RelHumidity{90.0});
    a.observe(at(1800), Celsius{20.0}, Celsius{5.0}, RelHumidity{40.0});
    a.finish(at(1800));
    EXPECT_EQ(a.events().size(), 2u);
}

}  // namespace
}  // namespace zerodeg::thermal
