// Integration tests over the full experiment runner, plus the prototype
// phase and the operator-behavior helpers.
#include <gtest/gtest.h>

#include "experiment/census.hpp"
#include "experiment/prototype.hpp"
#include "experiment/runner.hpp"

namespace zerodeg::experiment {
namespace {

using core::Duration;
using core::TimePoint;

ExperimentConfig short_config(std::uint64_t seed = 7) {
    ExperimentConfig cfg;
    cfg.master_seed = seed;
    cfg.end = TimePoint::from_date(2010, 3, 2);  // ~11 days, fast
    // Shrink the corpus so constructing the job is quick.
    cfg.load.corpus.total_bytes = 128 * 1024;
    cfg.load.target_blocks = 30;
    return cfg;
}

TEST(OperatorModel, NextVisitSkipsWeekend) {
    // Host #15 crashed Saturday 04:40 and was reset "on the following
    // Monday".  (March 7 2010 is a Sunday; the paper's Saturday March 7 is
    // taken as written — any weekend crash waits for Monday 10:00.)
    const TimePoint saturday_night = TimePoint::from_civil({2010, 3, 6, 4, 40, 0});
    const TimePoint visit = next_operator_visit(saturday_night, 10);
    EXPECT_EQ(visit.to_civil().hour, 10);
    EXPECT_EQ(visit.iso_weekday(), 1);  // Monday
    EXPECT_EQ(visit.date_string(), "2010-03-08");
}

TEST(OperatorModel, SameDayVisitIfBeforeTen) {
    const TimePoint tuesday_early = TimePoint::from_civil({2010, 3, 9, 6, 0, 0});
    const TimePoint visit = next_operator_visit(tuesday_early, 10);
    EXPECT_EQ(visit.date_string(), "2010-03-09");
    const TimePoint tuesday_noon = TimePoint::from_civil({2010, 3, 9, 12, 0, 0});
    EXPECT_EQ(next_operator_visit(tuesday_noon, 10).date_string(), "2010-03-10");
}

TEST(Runner, InstallTimelineRespected) {
    ExperimentRunner run(short_config());
    run.run_until(TimePoint::from_date(2010, 2, 23));
    // By Feb 23 only the first three pairs are up.
    std::size_t powered = 0;
    for (const auto& rec : run.fleet().hosts()) {
        if (rec.server->state() != hardware::RunState::kPoweredOff) ++powered;
    }
    EXPECT_EQ(powered, 6u);
    run.run_until(TimePoint::from_date(2010, 2, 26));
    powered = 0;
    for (const auto& rec : run.fleet().hosts()) {
        if (rec.server->state() != hardware::RunState::kPoweredOff) ++powered;
    }
    EXPECT_EQ(powered, 10u);  // + Feb 24 and Feb 25 pairs
}

TEST(Runner, TentIsWarmerThanOutsideUnderLoad) {
    ExperimentRunner run(short_config());
    run.run();
    const auto tent = run.tent_truth_temperature().stats_between(
        TimePoint::from_date(2010, 2, 20), TimePoint::from_date(2010, 3, 2));
    const auto outside = run.station().temperature_series().stats_between(
        TimePoint::from_date(2010, 2, 20), TimePoint::from_date(2010, 3, 2));
    EXPECT_GT(tent.mean, outside.mean + 3.0);
}

TEST(Runner, TentModificationsLoggedOnSchedule) {
    ExperimentConfig cfg = short_config();
    cfg.end = TimePoint::from_date(2010, 2, 28);
    ExperimentRunner run(cfg);
    run.run();
    // Only R (Feb 26) fits in this window.
    EXPECT_TRUE(run.tent().has_modification(thermal::TentMod::kReflectiveFoil));
    EXPECT_FALSE(run.tent().has_modification(thermal::TentMod::kInnerTentRemoved));
    bool logged = false;
    for (const auto& e : run.event_log().entries()) {
        logged |= e.source == "tent" && e.message.find("reflective foil") != std::string::npos;
    }
    EXPECT_TRUE(logged);
}

TEST(Runner, BasementStaysInSpec) {
    ExperimentRunner run(short_config());
    run.run();
    const auto basement = run.basement_temperature().stats();
    EXPECT_GT(basement.min, 19.0);
    EXPECT_LT(basement.max, 24.0);
}

TEST(Runner, LoadRunsAccumulateOnlyOnInstalledHosts) {
    ExperimentRunner run(short_config());
    run.run();
    // Host 1 installed Feb 19, host 15 installed Mar 10 (after cfg.end).
    EXPECT_GT(run.load().stats(1).runs, 1000u);
    EXPECT_EQ(run.load().stats(15).runs, 0u);
}

TEST(Runner, DeterministicAcrossRuns) {
    const auto census_of = [](std::uint64_t seed) {
        ExperimentRunner run(short_config(seed));
        run.run();
        return take_census(run);
    };
    const FaultCensus a = census_of(99);
    const FaultCensus b = census_of(99);
    EXPECT_EQ(a.system_failures, b.system_failures);
    EXPECT_EQ(a.wrong_hashes, b.wrong_hashes);
    EXPECT_EQ(a.load_runs, b.load_runs);
    EXPECT_EQ(a.switch_failures, b.switch_failures);
}

TEST(Runner, CensusShapesMatchFleet) {
    ExperimentRunner run(short_config());
    run.run();
    const FaultCensus census = take_census(run);
    EXPECT_EQ(census.tent_hosts, 9u);
    EXPECT_EQ(census.basement_hosts, 9u);
    EXPECT_EQ(census.load_runs, run.load().total_runs());
    EXPECT_GE(census.system_failures,
              census.tent_hosts_failed > 0 || census.basement_hosts_failed > 0 ? 1u : 0u);
    EXPECT_GT(census.page_ops, 0u);
}

TEST(Runner, LoggerStartsLate) {
    ExperimentConfig cfg = short_config();
    cfg.logger_start = TimePoint::from_date(2010, 2, 25);
    ExperimentRunner run(cfg);
    run.run();
    EXPECT_GE(run.tent_logger().temperature_series().front().time,
              TimePoint::from_date(2010, 2, 25));
    // The station (outside) has data from the start, like Fig. 3.
    EXPECT_LT(run.station().temperature_series().front().time,
              TimePoint::from_date(2010, 2, 20));
}

TEST(Runner, CondensationNeverOnPoweredHost) {
    // Section 5's conclusion, verified over the simulated window: a powered
    // case never reaches the tent air's dew point.
    ExperimentRunner run(short_config());
    run.run();
    EXPECT_FALSE(run.condensation().condensation_occurred());
    EXPECT_GT(run.condensation().observations(), 100u);
}

TEST(Runner, PowerMeterSeesInstallSteps) {
    ExperimentRunner run(short_config());
    run.run();
    const auto& power = run.tent_meter().power_series();
    ASSERT_FALSE(power.empty());
    // More machines = more power: the last reading (9 tent hosts... minus
    // crashes) exceeds the first (3 hosts).
    EXPECT_GT(power.back().value, power.front().value);
    EXPECT_GT(run.tent_meter().metered_energy().kilowatt_hours(), 10.0);
}

TEST(Prototype, SurvivesTheWeekend) {
    const PrototypeResult r = run_prototype();
    EXPECT_TRUE(r.survived);
    EXPECT_TRUE(r.smart_ok);
    // The paper's weekend: minimum -10.2 degC, average -9.2 degC.  The
    // synthetic weather reproduces the regime, not the exact values.
    EXPECT_LT(r.outside_min.value(), -6.0);
    EXPECT_GT(r.outside_min.value(), -16.0);
    EXPECT_LT(r.outside_mean.value(), -5.0);
    EXPECT_GT(r.outside_mean.value(), -13.0);
    // "the CPU had been operating in temperatures as low as -4 degC".
    EXPECT_LT(r.cpu_min_reported.value(), 0.0);
    EXPECT_GT(r.cpu_min_reported.value(), -12.0);
    EXPECT_FALSE(r.outside_series.empty());
    EXPECT_FALSE(r.cpu_series.empty());
}

TEST(Prototype, BoxesBarelyWarmerThanOutside) {
    const PrototypeResult r = run_prototype();
    EXPECT_GT(r.box_min.value(), r.outside_min.value());
    EXPECT_LT(r.box_min.value(), r.outside_min.value() + 5.0);
}


TEST(Runner, ComponentFaultsFlowThroughToHardware) {
    // Crank component hazards so events certainly fire, and verify the
    // whole path: process -> hardware state -> fault log -> census.
    ExperimentConfig cfg = short_config();
    cfg.component_faults.fan_afr = 80.0;
    cfg.component_faults.disk_afr = 80.0;
    cfg.component_faults.media_events_per_year = 200.0;
    ExperimentRunner run(cfg);
    run.run();

    const FaultCensus census = take_census(run);
    EXPECT_GT(census.fan_faults, 0u);
    EXPECT_GT(census.disk_faults, 0u);

    // Hardware state changed accordingly somewhere in the fleet.
    bool any_seized = false;
    bool any_disk_dead = false;
    for (const auto& rec : run.fleet().hosts()) {
        for (auto& fan : rec.server->fans()) any_seized |= fan.seized();
        for (const auto& d : rec.server->storage().drives()) any_disk_dead |= d.failed();
    }
    EXPECT_TRUE(any_seized);
    EXPECT_TRUE(any_disk_dead);

    // With disks dying at this rate, some vendor-B single-drive host loses
    // its array and crashes ("storage array lost").
    bool storage_crash = false;
    for (const auto& e : run.event_log().entries()) {
        storage_crash |= e.message.find("storage array lost") != std::string::npos;
    }
    EXPECT_TRUE(storage_crash);
}

TEST(Runner, QuietComponentFaultsAtDefaultRates) {
    // At the defaults the paper's observation holds: no fan or disk deaths
    // in a typical season (media events are rare but possible).
    ExperimentRunner run(short_config(3));
    run.run();
    const FaultCensus census = take_census(run);
    EXPECT_EQ(census.fan_faults, 0u);
    EXPECT_LE(census.disk_faults, 2u);
}

TEST(Runner, TentEnvelopeMeteredAsMostlyOutside) {
    ExperimentRunner run(short_config());
    run.run();
    const thermal::EnvelopeTracker& env = run.tent_envelope();
    EXPECT_GT(env.hours_total(), 200.0);
    // A Finnish February is far below the allowable envelope almost always.
    EXPECT_LT(env.fraction_within(), 0.1);
    EXPECT_GT(env.hours(thermal::EnvelopeVerdict::kTooCold), 0.9 * env.hours_total());
}


TEST(Runner, TraceDrivenExperiment) {
    // Record a trace from the synthetic model, feed it back as if it were
    // real SMEAR data, and verify the experiment consumes it faithfully.
    ExperimentConfig cfg = short_config();
    weather::WeatherModel model(cfg.weather, cfg.master_seed);
    cfg.weather_trace = weather::generate_trace(model, cfg.start - Duration::days(1),
                                                cfg.end + Duration::days(1),
                                                Duration::minutes(30));
    ExperimentRunner run(cfg);
    run.run();

    // The station's record interpolates the trace: values at trace points
    // match, and the series covers the window.
    const auto& temps = run.station().temperature_series();
    ASSERT_FALSE(temps.empty());
    for (const weather::WeatherSample& s : cfg.weather_trace) {
        if (s.time < cfg.start || s.time > cfg.end) continue;
        const auto v = temps.interpolate(s.time);
        ASSERT_TRUE(v.has_value());
        EXPECT_NEAR(*v, s.temperature.value(), 1.5);  // station samples every 10 min
    }
    // And the tent still behaves (warmer than outside under load).
    const auto tent = run.tent_truth_temperature().stats();
    EXPECT_GT(tent.mean, temps.stats().mean);
}

TEST(Runner, TraceDrivenIsDeterministic) {
    ExperimentConfig cfg = short_config();
    weather::WeatherModel model(cfg.weather, 5);
    cfg.weather_trace = weather::generate_trace(model, cfg.start - Duration::days(1),
                                                cfg.end + Duration::days(1),
                                                Duration::minutes(30));
    const auto run_once = [&cfg] {
        ExperimentRunner run(cfg);
        run.run();
        return take_census(run);
    };
    const FaultCensus a = run_once();
    const FaultCensus b = run_once();
    EXPECT_EQ(a.system_failures, b.system_failures);
    EXPECT_EQ(a.wrong_hashes, b.wrong_hashes);
}

}  // namespace
}  // namespace zerodeg::experiment


