// The core::transport seam: loopback pairs, Unix-socket endpoints and the
// deterministic FaultyTransport (the network twin of FaultyFs) — same seed,
// same fault trace, regardless of timing; drops surface at the sender,
// disconnects as TransportClosed, crashes as SimulatedCrash and stay fatal.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/io.hpp"
#include "core/transport.hpp"

namespace zerodeg::core {
namespace {

TEST(Loopback, FramesArriveInOrderBothWays) {
    auto [a, b] = make_loopback_pair();
    a->send("one");
    a->send("two");
    b->send("reply");
    std::string frame;
    ASSERT_TRUE(b->try_recv(frame));
    EXPECT_EQ(frame, "one");
    ASSERT_TRUE(b->try_recv(frame));
    EXPECT_EQ(frame, "two");
    EXPECT_FALSE(b->try_recv(frame));
    ASSERT_TRUE(a->recv_wait(frame, 1000));
    EXPECT_EQ(frame, "reply");
}

TEST(Loopback, PeerCloseDrainsThenThrows) {
    auto [a, b] = make_loopback_pair();
    a->send("last words");
    a->close();
    std::string frame;
    ASSERT_TRUE(b->try_recv(frame));  // in-flight frames are never discarded
    EXPECT_EQ(frame, "last words");
    EXPECT_THROW(static_cast<void>(b->try_recv(frame)), TransportClosed);
    EXPECT_THROW(b->send("into the void"), TransportClosed);
    try {
        b->send("x");
        FAIL() << "expected TransportClosed";
    } catch (const TransportClosed& e) {
        EXPECT_EQ(e.code(), ErrorCode::kDisconnected);
    }
}

TEST(Loopback, RecvWaitTimesOutWithoutTraffic) {
    auto [a, b] = make_loopback_pair();
    std::string frame;
    EXPECT_FALSE(b->recv_wait(frame, 10));
    (void)a;
}

TEST(Loopback, RecvWaitWakesOnCrossThreadSend) {
    auto [a, b] = make_loopback_pair();
    std::thread sender([&a] { a->send("wake up"); });
    std::string frame;
    EXPECT_TRUE(b->recv_wait(frame, 10000));
    EXPECT_EQ(frame, "wake up");
    sender.join();
}

TEST(LoopbackListener, ConnectThenAcceptYieldsAConnectedPair) {
    LoopbackListener listener;
    auto client = listener.connect();
    auto server = listener.accept(1000);
    ASSERT_NE(server, nullptr);
    client->send("hello");
    std::string frame;
    ASSERT_TRUE(server->recv_wait(frame, 1000));
    EXPECT_EQ(frame, "hello");
    EXPECT_EQ(listener.accept(0), nullptr);  // nothing else pending
}

TEST(LoopbackListener, CloseOrphansPendingClientsWithTransportClosed) {
    LoopbackListener listener;
    auto client = listener.connect();  // never accepted
    listener.close();
    std::string frame;
    EXPECT_THROW(static_cast<void>(client->recv_wait(frame, 1000)), TransportClosed);
    EXPECT_THROW(static_cast<void>(listener.connect()), TransportClosed);
}

// --- Unix sockets -----------------------------------------------------------

std::filesystem::path short_socket_path(const char* tag) {
    // sun_path is ~108 bytes; TempDir can blow that, /tmp does not.
    return std::filesystem::path("/tmp") /
           ("zdt_" + std::string(tag) + "_" + std::to_string(::getpid()) + ".sock");
}

TEST(UnixTransport, RoundTripOverARealSocket) {
    const auto path = short_socket_path("rt");
    auto listener = listen_unix(path);
    auto client = connect_unix(path);
    auto server = listener->accept(2000);
    ASSERT_NE(server, nullptr);

    client->send("ping");
    client->send(std::string(100000, 'x'));  // bigger than one recv() gulp
    std::string frame;
    ASSERT_TRUE(server->recv_wait(frame, 2000));
    EXPECT_EQ(frame, "ping");
    ASSERT_TRUE(server->recv_wait(frame, 2000));
    EXPECT_EQ(frame.size(), 100000u);
    server->send("pong");
    ASSERT_TRUE(client->recv_wait(frame, 2000));
    EXPECT_EQ(frame, "pong");

    client->close();
    EXPECT_THROW(static_cast<void>(server->recv_wait(frame, 2000)), TransportClosed);
}

TEST(UnixTransport, ConnectWithoutListenerSaysDisconnected) {
    const auto path = short_socket_path("nolisten");
    std::filesystem::remove(path);
    EXPECT_THROW(static_cast<void>(connect_unix(path)), TransportClosed);
}

TEST(UnixTransport, OverlongSocketPathIsRejectedUpFront) {
    const std::filesystem::path path = "/tmp/" + std::string(200, 'p');
    EXPECT_THROW(static_cast<void>(listen_unix(path)), InvalidArgument);
    EXPECT_THROW(static_cast<void>(connect_unix(path)), InvalidArgument);
}

TEST(UnixTransport, EmptyFramesSurviveFraming) {
    const auto path = short_socket_path("empty");
    auto listener = listen_unix(path);
    auto client = connect_unix(path);
    auto server = listener->accept(2000);
    ASSERT_NE(server, nullptr);
    client->send("");
    client->send("after-empty");
    std::string frame = "sentinel";
    ASSERT_TRUE(server->recv_wait(frame, 2000));
    EXPECT_EQ(frame, "");
    ASSERT_TRUE(server->recv_wait(frame, 2000));
    EXPECT_EQ(frame, "after-empty");
}

// --- FaultyTransport --------------------------------------------------------

TransportFaultPlan rates(std::uint64_t seed, double drop, double dup, double reorder,
                         double disconnect = 0.0) {
    TransportFaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = drop;
    plan.dup_rate = dup;
    plan.reorder_rate = reorder;
    plan.disconnect_rate = disconnect;
    return plan;
}

/// Push `n` frames through a faulty link (absorbing injected drops the way a
/// resending sender would) and return the receive order.
std::vector<std::string> pump(FaultyTransport& tx, Transport& rx, int n) {
    for (int i = 0; i < n; ++i) {
        const std::string frame = "m" + std::to_string(i);
        for (int attempt = 0; attempt < 64; ++attempt) {
            try {
                tx.send(frame);
                break;
            } catch (const TransientError&) {
                // dropped: resend, like the worker's retry budget
            }
        }
    }
    tx.close();  // flushes any reorder-held tail frame
    std::vector<std::string> got;
    std::string frame;
    try {
        while (rx.recv_wait(frame, 100)) got.push_back(frame);
    } catch (const TransportClosed&) {
        // drained
    }
    return got;
}

TEST(FaultyTransport, CleanPlanIsInvisible) {
    auto [a, b] = make_loopback_pair();
    FaultyTransport faulty(TransportFaultPlan{}, "clean", std::move(a));
    const std::vector<std::string> got = pump(faulty, *b, 5);
    ASSERT_EQ(got.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
    EXPECT_EQ(faulty.send_ops(), 5u);
    EXPECT_TRUE(faulty.fault_trace().empty());
}

TEST(FaultyTransport, SameSeedSameFaultTrace) {
    const auto trace_of = [](std::uint64_t seed) {
        auto [a, b] = make_loopback_pair();
        FaultyTransport faulty(rates(seed, 0.2, 0.15, 0.15), "worker.0", std::move(a));
        (void)pump(faulty, *b, 40);
        std::string out;
        for (const InjectedNetFault& f : faulty.fault_trace()) out += f.to_string() + "\n";
        return out;
    };
    const std::string a = trace_of(7);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, trace_of(7));  // bit-for-bit repeatable
    EXPECT_NE(a, trace_of(8));  // and actually seed-dependent
}

TEST(FaultyTransport, ChannelNameDecorrelatesLinksSharingOnePlan) {
    const auto trace_of = [](const char* channel) {
        auto [a, b] = make_loopback_pair();
        FaultyTransport faulty(rates(7, 0.2, 0.1, 0.1), channel, std::move(a));
        (void)pump(faulty, *b, 40);
        std::string out;
        for (const InjectedNetFault& f : faulty.fault_trace()) out += f.to_string() + "\n";
        return out;
    };
    EXPECT_NE(trace_of("worker.0"), trace_of("worker.1"));
}

TEST(FaultyTransport, DroppedFramesResurfaceViaResend) {
    auto [a, b] = make_loopback_pair();
    FaultyTransport faulty(rates(21, 0.35, 0.0, 0.0), "droppy", std::move(a));
    const std::vector<std::string> got = pump(faulty, *b, 30);
    // Resends absorb every drop: all 30 frames arrive, in order, exactly once.
    ASSERT_EQ(got.size(), 30u);
    for (int i = 0; i < 30; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
    bool saw_drop = false;
    for (const InjectedNetFault& f : faulty.fault_trace()) {
        saw_drop = saw_drop || f.kind == NetFaultKind::kDrop;
    }
    EXPECT_TRUE(saw_drop) << "a 35% drop rate over 30 sends injected nothing";
}

TEST(FaultyTransport, DuplicatesAndReordersAreDeliveredNotLost) {
    auto [a, b] = make_loopback_pair();
    FaultyTransport faulty(rates(5, 0.0, 0.3, 0.3), "dupey", std::move(a));
    const std::vector<std::string> got = pump(faulty, *b, 30);
    EXPECT_GE(got.size(), 30u);  // duplicates only add
    std::vector<int> seen(30, 0);
    for (const std::string& f : got) seen[static_cast<std::size_t>(std::stoi(f.substr(1)))]++;
    for (int i = 0; i < 30; ++i) EXPECT_GE(seen[static_cast<std::size_t>(i)], 1) << "m" << i << " lost";
    bool out_of_order = false;
    for (std::size_t i = 1; i < got.size(); ++i) {
        if (got[i] < got[i - 1]) out_of_order = true;
    }
    EXPECT_TRUE(out_of_order) << "a 30% reorder rate left every frame in order";
}

TEST(FaultyTransport, DisconnectClosesBothViews) {
    auto [a, b] = make_loopback_pair();
    FaultyTransport faulty(rates(3, 0.0, 0.0, 0.0, 0.4), "cutme", std::move(a));
    bool disconnected = false;
    for (int i = 0; i < 50 && !disconnected; ++i) {
        try {
            faulty.send("m" + std::to_string(i));
        } catch (const TransportClosed&) {
            disconnected = true;
        }
    }
    ASSERT_TRUE(disconnected);
    EXPECT_TRUE(faulty.closed());
    // Both ends now observe the cut (after draining).
    std::string frame;
    try {
        while (b->try_recv(frame)) {
        }
        FAIL() << "expected TransportClosed";
    } catch (const TransportClosed&) {
    }
}

TEST(FaultyTransport, CrashAtSendIsFatalAndSticky) {
    auto [a, b] = make_loopback_pair();
    TransportFaultPlan plan;
    plan.crash_at_send = 2;
    plan.crash_phase = NetCrashPhase::kBeforeOp;
    FaultyTransport faulty(plan, "victim", std::move(a));
    faulty.send("m0");
    faulty.send("m1");
    EXPECT_THROW(faulty.send("m2"), SimulatedCrash);
    EXPECT_TRUE(faulty.crashed());
    EXPECT_THROW(faulty.send("m3"), SimulatedCrash);  // dead is dead
    std::string frame;
    EXPECT_THROW(static_cast<void>(faulty.try_recv(frame)), SimulatedCrash);
    // kBeforeOp: the crashing frame never left.
    std::vector<std::string> got;
    try {
        while (b->try_recv(frame)) got.push_back(frame);
    } catch (const TransportClosed&) {
    }
    EXPECT_EQ(got, (std::vector<std::string>{"m0", "m1"}));
}

TEST(FaultyTransport, CrashAfterOpShipsTheFrameFirst) {
    auto [a, b] = make_loopback_pair();
    TransportFaultPlan plan;
    plan.crash_at_send = 1;
    plan.crash_phase = NetCrashPhase::kAfterOp;
    FaultyTransport faulty(plan, "victim", std::move(a));
    faulty.send("m0");
    EXPECT_THROW(faulty.send("m1"), SimulatedCrash);
    std::string frame;
    std::vector<std::string> got;
    try {
        while (b->try_recv(frame)) got.push_back(frame);
    } catch (const TransportClosed&) {
    }
    EXPECT_EQ(got, (std::vector<std::string>{"m0", "m1"}));
}

TEST(FaultyTransport, AckDropEatsDeliveredFrames) {
    auto [a, b] = make_loopback_pair();
    TransportFaultPlan plan;
    plan.seed = 11;
    plan.ack_drop_rate = 0.5;
    FaultyTransport faulty(plan, "deaf", std::move(b));
    for (int i = 0; i < 20; ++i) a->send("ack" + std::to_string(i));
    std::string frame;
    std::size_t heard = 0;
    // A dropped delivery surfaces as a timeout (false), so a real caller
    // keeps polling on its resend budget; 40 bounded rounds drain all 20.
    for (int round = 0; round < 40; ++round) {
        if (faulty.recv_wait(frame, 10)) ++heard;
    }
    EXPECT_LT(heard, 20u);  // some acks evaporated
    EXPECT_GT(heard, 0u);
    EXPECT_EQ(faulty.recv_ops(), 20u);  // but every delivery was an op
}

TEST(FaultyTransport, ReorderedTailFrameIsFlushedBeforeAWaitingRecv) {
    // The deadlock guard: the LAST frame gets held for reordering, then the
    // sender waits for a reply that can only come once the frame arrives.
    auto [a, b] = make_loopback_pair();
    TransportFaultPlan plan;
    plan.reorder_rate = 1.0;  // hold every frame
    FaultyTransport faulty(plan, "straggler", std::move(a));
    faulty.send("request");  // held, not yet delivered
    std::string frame;
    std::thread echo([&b] {
        std::string f;
        if (b->recv_wait(f, 5000)) b->send("reply:" + f);
    });
    // recv_wait must flush the held frame before blocking, or both sides wait.
    ASSERT_TRUE(faulty.recv_wait(frame, 5000));
    EXPECT_EQ(frame, "reply:request");
    echo.join();
}

}  // namespace
}  // namespace zerodeg::core
