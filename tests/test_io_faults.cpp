// The core::io seam: RealFs honesty, FaultyFs determinism, and the crash
// semantics the torture harness builds on.  The load-bearing property is
// that a fault schedule is a pure function of (seed, op index) — the same
// seed must produce the same fault trace no matter how threads interleave,
// or crash-point replay under --jobs 8 would be unreproducible.
#include "core/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"

namespace zerodeg::core {
namespace {

namespace fs = std::filesystem;

fs::path scratch(const std::string& name) {
    fs::path p = fs::path(::testing::TempDir()) / ("io_faults_" + name);
    fs::remove(p);
    fs::remove(fs::path(p.string() + ".tmp"));
    return p;
}

std::vector<std::string> trace_strings(const FaultyFs& faulty) {
    std::vector<std::string> out;
    for (const InjectedFault& f : faulty.fault_trace()) out.push_back(f.to_string());
    return out;
}

TEST(RealFs, WriteReadRenameRemoveRoundTrip) {
    const fs::path a = scratch("real_a");
    const fs::path b = scratch("real_b");
    FileSystem& disk = real_fs();

    disk.write_file(a, "hello\nzero degrees\n");
    EXPECT_TRUE(disk.exists(a));
    EXPECT_EQ(disk.read_file(a), "hello\nzero degrees\n");

    disk.rename(a, b);
    EXPECT_FALSE(disk.exists(a));
    EXPECT_EQ(disk.read_file(b), "hello\nzero degrees\n");

    disk.remove(b);
    EXPECT_FALSE(disk.exists(b));
    disk.remove(b);  // removing a missing file is not an error
}

TEST(RealFs, ReadingAMissingFileThrowsIoError) {
    EXPECT_THROW((void)real_fs().read_file(scratch("never_written")), IoError);
}

TEST(FaultyFs, SameSeedSameOpsSameTrace) {
    const fs::path p = scratch("det");
    const auto run_once = [&p](std::uint64_t seed) {
        FaultPlan plan;
        plan.seed = seed;
        plan.write_fault_rate = 0.5;
        FaultyFs faulty(plan);
        for (int i = 0; i < 30; ++i) {
            try {
                faulty.write_file(p, "payload payload payload");
            } catch (const TransientError&) {
            }
        }
        return trace_strings(faulty);
    };
    const std::vector<std::string> first = run_once(7);
    EXPECT_EQ(first, run_once(7));
    EXPECT_FALSE(first.empty());
    EXPECT_NE(first, run_once(8));
}

TEST(FaultyFs, TraceIsImmuneToThreadInterleaving) {
    // 2 threads x 15 ops and 1 thread x 30 ops walk the same op indices, so
    // the hash-scheduled trace must come out identical: the schedule depends
    // on op order, never on which thread drew which op.
    const fs::path p = scratch("interleave");
    FaultPlan plan;
    plan.seed = 99;
    plan.write_fault_rate = 0.5;

    FaultyFs serial(plan);
    for (int i = 0; i < 30; ++i) {
        try {
            serial.write_file(p, "x");
        } catch (const TransientError&) {
        }
    }

    FaultyFs threaded(plan);
    const auto worker = [&threaded, &p] {
        for (int i = 0; i < 15; ++i) {
            try {
                threaded.write_file(p, "x");
            } catch (const TransientError&) {
            }
        }
    };
    std::thread t1(worker);
    std::thread t2(worker);
    t1.join();
    t2.join();

    EXPECT_EQ(trace_strings(serial), trace_strings(threaded));
}

TEST(FaultyFs, WriteFaultsAccountDroppedBytes) {
    // Short writes and ENOSPC must say how many bytes were lost, the same
    // accounting CollectorRetryPolicy keeps for dropped telemetry.
    const fs::path p = scratch("dropped");
    FaultPlan plan;
    plan.seed = 3;
    plan.write_fault_rate = 1.0;
    FaultyFs faulty(plan);
    bool saw_lossy_kind = false;
    for (int i = 0; i < 20; ++i) {
        try {
            faulty.write_file(p, "twenty bytes of data");
            FAIL() << "every write should fault at rate 1.0";
        } catch (const TransientError& e) {
            const FaultKind kind = faulty.fault_trace().back().kind;
            if (kind == FaultKind::kShortWrite || kind == FaultKind::kNoSpace) {
                saw_lossy_kind = true;
                EXPECT_NE(std::string(e.what()).find("dropped"), std::string::npos)
                    << "op " << i << " (" << to_string(kind) << "): " << e.what();
            }
        }
    }
    EXPECT_TRUE(saw_lossy_kind);
}

TEST(FaultyFs, CrashBeforeOpLeavesNothingAndKillsTheFs) {
    const fs::path p = scratch("crash_before");
    FaultPlan plan;
    plan.crash_at_op = 0;
    plan.crash_phase = CrashPhase::kBeforeOp;
    FaultyFs faulty(plan);
    EXPECT_THROW(faulty.write_file(p, "never lands"), SimulatedCrash);
    EXPECT_TRUE(faulty.crashed());
    EXPECT_FALSE(real_fs().exists(p));
    // The process is dead: every further operation rethrows the crash.
    EXPECT_THROW((void)faulty.exists(p), SimulatedCrash);
    EXPECT_THROW((void)faulty.read_file(p), SimulatedCrash);
}

TEST(FaultyFs, TornWriteLeavesAStrictPrefix) {
    const fs::path p = scratch("crash_torn");
    const std::string content = "0123456789 torn write leaves a deterministic prefix";
    FaultPlan plan;
    plan.crash_at_op = 0;
    plan.crash_phase = CrashPhase::kTornWrite;
    FaultyFs faulty(plan);
    EXPECT_THROW(faulty.write_file(p, content), SimulatedCrash);
    const std::string on_disk = real_fs().read_file(p);
    EXPECT_LT(on_disk.size(), content.size());
    EXPECT_EQ(on_disk, content.substr(0, on_disk.size()));
}

TEST(FaultyFs, CrashAfterOpLeavesTheCompleteFile) {
    const fs::path p = scratch("crash_after");
    FaultPlan plan;
    plan.crash_at_op = 0;
    plan.crash_phase = CrashPhase::kAfterOp;
    FaultyFs faulty(plan);
    EXPECT_THROW(faulty.write_file(p, "all of it"), SimulatedCrash);
    EXPECT_EQ(real_fs().read_file(p), "all of it");
}

TEST(FaultyFs, TornTailChopsUpTo45Bytes) {
    const fs::path p = scratch("crash_tail");
    const std::string content(200, 'z');
    FaultPlan plan;
    plan.crash_at_op = 0;
    plan.crash_phase = CrashPhase::kTornTail;
    FaultyFs faulty(plan);
    EXPECT_THROW(faulty.write_file(p, content), SimulatedCrash);
    const std::string on_disk = real_fs().read_file(p);
    EXPECT_LT(on_disk.size(), content.size());
    EXPECT_GE(on_disk.size(), content.size() - 45);
    EXPECT_EQ(on_disk, content.substr(0, on_disk.size()));
}

TEST(DurableWrite, RetriesAbsorbInjectedFaultsUpToTheBudget) {
    const fs::path p = scratch("durable");
    FaultPlan plan;
    plan.seed = 11;
    plan.write_fault_rate = 0.5;
    FaultyFs faulty(plan);
    const int retries = write_file_durable(faulty, p, "survives", IoRetryPolicy{10}, "test file");
    EXPECT_GE(retries, 0);
    EXPECT_EQ(real_fs().read_file(p), "survives");
}

TEST(DurableWrite, ExhaustedBudgetNamesTheAttemptCount) {
    const fs::path p = scratch("exhausted");
    FaultPlan plan;
    plan.write_fault_rate = 1.0;
    FaultyFs faulty(plan);
    try {
        (void)write_file_durable(faulty, p, "doomed", IoRetryPolicy{3}, "doomed file");
        FAIL() << "expected TransientError";
    } catch (const TransientError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("3 attempt"), std::string::npos) << what;
        EXPECT_NE(what.find("doomed file"), std::string::npos) << what;
    }
}

TEST(DurableWrite, SimulatedCrashIsNeverRetried) {
    const fs::path p = scratch("crash_no_retry");
    FaultPlan plan;
    plan.crash_at_op = 0;
    plan.crash_phase = CrashPhase::kBeforeOp;
    FaultyFs faulty(plan);
    EXPECT_THROW((void)write_file_durable(faulty, p, "x", IoRetryPolicy{10}, "t"), SimulatedCrash);
    EXPECT_EQ(faulty.op_count(), 1u);  // one op, not ten: a crash ends the world
}

TEST(AtomicReplace, CrashedRenameNeverExposesAHalfWrittenFile) {
    FileSystem& disk = real_fs();
    const std::string old_content = "old complete file\n";
    const std::string new_content = "new complete file, longer than the old one\n";

    // replace_file_atomic is write tmp (op 0) then rename (op 1).
    struct Case {
        CrashPhase phase;
        bool expect_new;
    };
    for (const Case& c : {Case{CrashPhase::kBeforeOp, false}, Case{CrashPhase::kAfterOp, true}}) {
        const fs::path p = scratch("replace_" + std::string(to_string(c.phase)));
        disk.write_file(p, old_content);
        FaultPlan plan;
        plan.crash_at_op = 1;
        plan.crash_phase = c.phase;
        FaultyFs faulty(plan);
        EXPECT_THROW((void)replace_file_atomic(faulty, p, new_content, IoRetryPolicy{}, "t"),
                     SimulatedCrash);
        EXPECT_EQ(disk.read_file(p), c.expect_new ? new_content : old_content)
            << "crash phase " << to_string(c.phase);
    }
}

TEST(AtomicReplace, RenameFaultsRestartTheWholeSequence) {
    const fs::path p = scratch("replace_retry");
    FaultPlan plan;
    plan.seed = 5;
    plan.rename_fault_rate = 0.5;
    FaultyFs faulty(plan);
    const int retries =
        replace_file_atomic(faulty, p, "landed", IoRetryPolicy{10}, "retry test");
    EXPECT_GE(retries, 0);
    EXPECT_EQ(real_fs().read_file(p), "landed");
}

}  // namespace
}  // namespace zerodeg::core
