#include "workload/recover.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "workload/archive.hpp"
#include "workload/corpus.hpp"

namespace zerodeg::workload {
namespace {

std::vector<std::uint8_t> sample_container(std::size_t corpus_bytes = 64 * 1024,
                                           std::size_t block_size = 4096) {
    CorpusConfig cfg;
    cfg.total_bytes = corpus_bytes;
    const SyntheticCorpus corpus(cfg, 13);
    CompressorConfig cc;
    cc.block_size = block_size;
    return frost_compress(write_archive(corpus.files()), cc);
}

TEST(Recover, PristineContainerFullyIntact) {
    const auto packed = sample_container();
    std::vector<std::uint8_t> salvaged;
    const RecoveryReport r = frost_recover(packed, &salvaged);
    EXPECT_TRUE(r.fully_intact());
    EXPECT_TRUE(r.corrupt_blocks.empty());
    EXPECT_EQ(r.lost_bytes, 0u);
    EXPECT_EQ(salvaged.size(), r.salvaged_bytes);
    EXPECT_EQ(salvaged, frost_decompress(packed));
}

TEST(Recover, SingleFlipDamagesExactlyOneBlock) {
    // Section 4.2.2's forensics: one flipped bit, one bad block of ~396.
    auto packed = sample_container();
    const auto dir = frost_block_directory(packed);
    ASSERT_GT(dir.size(), 4u);
    // Flip a payload bit in block 3.
    packed[dir[3].offset + 17 + dir[3].comp_size / 2] ^= 0x04;

    const RecoveryReport r = frost_recover(packed);
    EXPECT_EQ(r.total_blocks, dir.size());
    ASSERT_EQ(r.corrupt_blocks.size(), 1u);
    EXPECT_EQ(r.corrupt_blocks[0], 3u);
    EXPECT_EQ(r.lost_bytes, dir[3].orig_size);
    EXPECT_FALSE(r.directory_damaged);
}

TEST(Recover, MultipleFlipsMultipleBlocks) {
    auto packed = sample_container();
    const auto dir = frost_block_directory(packed);
    ASSERT_GT(dir.size(), 8u);
    packed[dir[2].offset + 17 + 5] ^= 0x01;
    packed[dir[7].offset + 17 + 5] ^= 0x01;
    const RecoveryReport r = frost_recover(packed);
    EXPECT_EQ(r.corrupt_blocks, (std::vector<std::size_t>{2, 7}));
}

TEST(Recover, CrcFieldCorruptionAlsoFlagsBlock) {
    auto packed = sample_container();
    const auto dir = frost_block_directory(packed);
    packed[dir[1].offset + 12] ^= 0xff;  // stored CRC itself
    const RecoveryReport r = frost_recover(packed);
    ASSERT_EQ(r.corrupt_blocks.size(), 1u);
    EXPECT_EQ(r.corrupt_blocks[0], 1u);
}

TEST(Recover, DamagedStreamHeaderTriggersRescan) {
    auto packed = sample_container();
    const auto expected_blocks = frost_block_directory(packed).size();
    packed[0] = 'X';  // destroy the stream magic
    const RecoveryReport r = frost_recover(packed);
    EXPECT_TRUE(r.directory_damaged);
    // The magic-scan recovers all blocks (their headers are intact).
    EXPECT_EQ(r.total_blocks, expected_blocks);
    EXPECT_TRUE(r.corrupt_blocks.empty());
    EXPECT_GT(r.salvaged_bytes, 0u);
}

TEST(Recover, TruncatedTailLosesOnlyTailBlocks) {
    auto packed = sample_container();
    const auto dir = frost_block_directory(packed);
    // Cut the container in the middle of the last block.
    packed.resize(dir.back().offset + 10);
    const RecoveryReport r = frost_recover(packed);
    EXPECT_TRUE(r.directory_damaged);  // directory walk hits the truncation
    EXPECT_EQ(r.total_blocks, dir.size() - 1);
    EXPECT_TRUE(r.corrupt_blocks.empty());
}

TEST(Recover, GarbageInput) {
    std::vector<std::uint8_t> garbage(1000, 0xaa);
    const RecoveryReport r = frost_recover(garbage);
    EXPECT_TRUE(r.directory_damaged);
    EXPECT_EQ(r.total_blocks, 0u);
    EXPECT_EQ(r.salvaged_bytes, 0u);
}

TEST(Recover, SalvagedBytesDeliveredInOrder) {
    auto packed = sample_container(32 * 1024, 2048);
    const auto original = frost_decompress(packed);
    const auto dir = frost_block_directory(packed);
    packed[dir[0].offset + 17 + 3] ^= 0x20;  // kill block 0

    std::vector<std::uint8_t> salvaged;
    const RecoveryReport r = frost_recover(packed, &salvaged);
    ASSERT_EQ(r.corrupt_blocks.size(), 1u);
    // Salvage equals the original minus the first block.
    const std::vector<std::uint8_t> expected(
        original.begin() + static_cast<std::ptrdiff_t>(dir[0].orig_size), original.end());
    EXPECT_EQ(salvaged, expected);
}

// Property: wherever a single payload bit lands, recovery reports exactly
// one corrupt block and never throws.
class SingleFlipAnywhere : public ::testing::TestWithParam<int> {};

TEST_P(SingleFlipAnywhere, OneBadBlock) {
    auto packed = sample_container(48 * 1024, 4096);
    core::RngStream rng(static_cast<std::uint64_t>(GetParam()), "flip");
    const auto dir = frost_block_directory(packed);
    const auto& blk =
        dir[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(dir.size()) - 1))];
    ASSERT_GT(blk.comp_size, 0u);
    const std::size_t pos =
        blk.offset + 17 +
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(blk.comp_size) - 1));
    packed[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    const RecoveryReport r = frost_recover(packed);
    EXPECT_EQ(r.corrupt_blocks.size(), 1u);
    EXPECT_EQ(r.salvaged_bytes + r.lost_bytes,
              frost_decompress(sample_container(48 * 1024, 4096)).size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleFlipAnywhere, ::testing::Range(0, 10));

}  // namespace
}  // namespace zerodeg::workload
