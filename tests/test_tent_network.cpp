#include "thermal/tent_network.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::thermal {
namespace {

using core::Celsius;
using core::Duration;
using core::MetersPerSecond;
using core::RelHumidity;
using core::Watts;
using core::WattsPerSquareMeter;

weather::WeatherSample conditions(double temp_c, double wind = 0.0, double sun = 0.0) {
    weather::WeatherSample s;
    s.temperature = Celsius{temp_c};
    s.humidity = RelHumidity{80.0};
    s.wind = MetersPerSecond{wind};
    s.irradiance = WattsPerSquareMeter{sun};
    return s;
}

template <typename Tent>
Tent settle(Tent tent, const weather::WeatherSample& outside, Watts power) {
    tent.set_equipment_power(power);
    for (int i = 0; i < 12 * 48; ++i) tent.step(Duration::minutes(10), outside);
    return tent;
}

TEST(TentNetwork, EquilibriumMatchesLumpedModel) {
    // By construction the series conductances reduce to the lumped envelope
    // conductance, so the two models agree at steady state.
    const auto outside = conditions(-15.0);
    const Watts p{800.0};
    const TentModel lumped =
        settle(TentModel(TentConfig{}, Celsius{-15.0}), outside, p);
    const TentNetworkModel net =
        settle(TentNetworkModel(TentConfig{}, Celsius{-15.0}), outside, p);
    EXPECT_NEAR(net.air().temperature.value(), lumped.air().temperature.value(), 1.0);
}

TEST(TentNetwork, EquilibriumMatchesAcrossModifications) {
    const auto outside = conditions(-10.0, 3.0);
    const Watts p{850.0};
    for (const TentMod mod : {TentMod::kInnerTentRemoved, TentMod::kBottomOpened,
                              TentMod::kFanInstalled}) {
        TentModel lumped(TentConfig{}, Celsius{-10.0});
        lumped.apply_modification(mod);
        TentNetworkModel net(TentConfig{}, Celsius{-10.0});
        net.apply_modification(mod);
        const double a = settle(std::move(lumped), outside, p).air().temperature.value();
        const double b = settle(std::move(net), outside, p).air().temperature.value();
        EXPECT_NEAR(a, b, 1.2) << to_string(mod);
    }
}

TEST(TentNetwork, FabricHotterThanAirInSunshine) {
    // The effect the lumped model cannot show: with the machines off, the
    // sun loads the *fabric*, which then runs hotter than the inside air.
    // (With equipment running, its heat must exit through the fabric, which
    // forces air > fabric — also resolved only by the network model.)
    const auto sunny = conditions(-5.0, 1.0, 500.0);
    const TentNetworkModel idle =
        settle(TentNetworkModel(TentConfig{}, Celsius{-5.0}), sunny, Watts{0.0});
    EXPECT_GT(idle.fabric_temperature().value(), idle.air().temperature.value());

    const TentNetworkModel loaded =
        settle(TentNetworkModel(TentConfig{}, Celsius{-5.0}), sunny, Watts{600.0});
    EXPECT_GT(loaded.air().temperature.value(), loaded.fabric_temperature().value());
}

TEST(TentNetwork, FoilProtectsAirViaFabric) {
    const auto sunny = conditions(-5.0, 1.0, 500.0);
    TentNetworkModel bare(TentConfig{}, Celsius{-5.0});
    TentNetworkModel foiled(TentConfig{}, Celsius{-5.0});
    foiled.apply_modification(TentMod::kReflectiveFoil);
    const double bare_air =
        settle(std::move(bare), sunny, Watts{300.0}).air().temperature.value();
    const double foiled_air =
        settle(std::move(foiled), sunny, Watts{300.0}).air().temperature.value();
    EXPECT_LT(foiled_air, bare_air - 2.0);
}

TEST(TentNetwork, MassBuffersFastFronts) {
    // After a sudden deep front, the equipment mass is still warmer than
    // the air: the buffering the three-node model resolves.
    TentNetworkModel tent(TentConfig{}, Celsius{0.0});
    tent.set_equipment_power(Watts{600.0});
    const auto mild = conditions(0.0);
    for (int i = 0; i < 12 * 24; ++i) tent.step(Duration::minutes(10), mild);
    const auto front = conditions(-20.0, 8.0);
    tent.step(Duration::minutes(30), front);
    EXPECT_GT(tent.equipment_mass_temperature().value(), tent.air().temperature.value() + 0.5);
}

TEST(TentNetwork, HumidityBehavesLikeLumpedModel) {
    const auto outside = conditions(-10.0);
    const TentNetworkModel tent =
        settle(TentNetworkModel(TentConfig{}, Celsius{-10.0}), outside, Watts{700.0});
    const EnclosureAir air = tent.air();
    EXPECT_LT(air.humidity.value(), 80.0);  // warmer inside -> lower RH
    EXPECT_GT(air.humidity.value(), 1.0);
    EXPECT_LT(air.dew_point.value(), air.temperature.value());
}

TEST(TentNetwork, NegativeDtThrows) {
    TentNetworkModel tent;
    EXPECT_THROW(tent.step(Duration::seconds(-1), conditions(0.0)), core::InvalidArgument);
}

TEST(TentNetwork, ModificationFlags) {
    TentNetworkModel tent;
    EXPECT_FALSE(tent.has_modification(TentMod::kFanInstalled));
    tent.apply_modification(TentMod::kFanInstalled);
    EXPECT_TRUE(tent.has_modification(TentMod::kFanInstalled));
}

}  // namespace
}  // namespace zerodeg::thermal
