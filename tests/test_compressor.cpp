#include "workload/compressor.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "workload/archive.hpp"
#include "workload/corpus.hpp"

namespace zerodeg::workload {
namespace {

using frost_detail::BitReader;
using frost_detail::BitWriter;
using frost_detail::canonical_codes;
using frost_detail::huffman_code_lengths;
using frost_detail::rle_decode;
using frost_detail::rle_encode;

// --- RLE ---------------------------------------------------------------

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> xs) {
    std::vector<std::uint8_t> out;
    for (const int x : xs) out.push_back(static_cast<std::uint8_t>(x));
    return out;
}

TEST(Rle, CompressesRuns) {
    const std::vector<std::uint8_t> data(1000, 0x00);
    const auto enc = rle_encode(data);
    EXPECT_LT(enc.size(), 20u);
    EXPECT_EQ(rle_decode(enc), data);
}

TEST(Rle, ShortRunsStayLiteral) {
    const auto data = bytes_of({1, 1, 1, 2, 3});  // run of 3 < minimum 4
    const auto enc = rle_encode(data);
    EXPECT_EQ(enc, data);
    EXPECT_EQ(rle_decode(enc), data);
}

TEST(Rle, EscapeByteHandled) {
    const auto data = bytes_of({0xf7, 1, 0xf7, 0xf7, 2});
    EXPECT_EQ(rle_decode(rle_encode(data)), data);
}

TEST(Rle, RunOfEscapeBytes) {
    const std::vector<std::uint8_t> data(300, 0xf7);
    EXPECT_EQ(rle_decode(rle_encode(data)), data);
}

TEST(Rle, TruncatedEscapeThrows) {
    EXPECT_THROW((void)rle_decode(bytes_of({0xf7, 1})), core::CorruptData);
    EXPECT_THROW((void)rle_decode(bytes_of({0xf7})), core::CorruptData);
}

TEST(Rle, BadLiteralEscapeThrows) {
    // count 0 with value != ESC is invalid.
    EXPECT_THROW((void)rle_decode(bytes_of({0xf7, 0x01, 0x00})), core::CorruptData);
}

// Property sweep: round trip across byte patterns, including the regression
// case of runs longer than the count byte can express.
class RleRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RleRoundTrip, Inverse) {
    core::RngStream rng(static_cast<std::uint64_t>(GetParam()), "rle");
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 200; ++i) {
        const auto value = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const auto run = static_cast<std::size_t>(rng.uniform_int(1, 600));
        data.insert(data.end(), run, value);
    }
    EXPECT_EQ(rle_decode(rle_encode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleRoundTrip, ::testing::Range(0, 8));

TEST(Rle, ExactCountBoundaries) {
    // Runs of 257, 258, 259 (the 259 case was a real overflow bug).
    for (const std::size_t n : {253u, 254u, 255u, 256u, 257u, 258u, 259u, 260u, 600u}) {
        const std::vector<std::uint8_t> data(n, 0x41);
        EXPECT_EQ(rle_decode(rle_encode(data)), data) << n;
    }
}

// --- bitstream -----------------------------------------------------------

TEST(Bitstream, RoundTrip) {
    BitWriter w;
    w.put(0b101, 3);
    w.put(0b1, 1);
    w.put(0xABCD, 16);
    const auto bytes = w.finish();
    BitReader r(bytes);
    std::uint32_t v = 0;
    for (int i = 0; i < 3; ++i) v = (v << 1) | static_cast<std::uint32_t>(r.bit());
    EXPECT_EQ(v, 0b101u);
    EXPECT_EQ(r.bit(), 1);
    v = 0;
    for (int i = 0; i < 16; ++i) v = (v << 1) | static_cast<std::uint32_t>(r.bit());
    EXPECT_EQ(v, 0xABCDu);
}

TEST(Bitstream, ReadPastEndThrows) {
    BitWriter w;
    w.put(1, 1);
    const auto bytes = w.finish();
    BitReader r(bytes);
    for (int i = 0; i < 8; ++i) (void)r.bit();
    EXPECT_TRUE(r.exhausted());
    EXPECT_THROW((void)r.bit(), core::CorruptData);
}

TEST(Bitstream, BadPutCountThrows) {
    BitWriter w;
    EXPECT_THROW(w.put(0, -1), core::InvalidArgument);
    EXPECT_THROW(w.put(0, 33), core::InvalidArgument);
}

// --- Huffman ---------------------------------------------------------------

TEST(Huffman, KraftEquality) {
    // An optimal prefix code satisfies sum(2^-len) == 1.
    std::vector<std::uint64_t> freq(257, 0);
    freq['a'] = 50;
    freq['b'] = 30;
    freq['c'] = 15;
    freq['d'] = 5;
    freq[256] = 1;
    const auto lengths = huffman_code_lengths(freq);
    double kraft = 0.0;
    for (const auto len : lengths) {
        if (len > 0) kraft += std::pow(2.0, -static_cast<double>(len));
    }
    EXPECT_NEAR(kraft, 1.0, 1e-12);
    // More frequent symbols never get longer codes.
    EXPECT_LE(lengths['a'], lengths['b']);
    EXPECT_LE(lengths['b'], lengths['c']);
    EXPECT_LE(lengths['c'], lengths['d']);
}

TEST(Huffman, SingleSymbolGetsLengthOne) {
    std::vector<std::uint64_t> freq(257, 0);
    freq[42] = 100;
    const auto lengths = huffman_code_lengths(freq);
    EXPECT_EQ(lengths[42], 1);
}

TEST(Huffman, EmptyThrows) {
    EXPECT_THROW((void)huffman_code_lengths(std::vector<std::uint64_t>(257, 0)),
                 core::InvalidArgument);
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
    std::vector<std::uint64_t> freq(257, 0);
    for (int i = 0; i < 257; ++i) freq[static_cast<std::size_t>(i)] = 1 + (i % 37);
    const auto lengths = huffman_code_lengths(freq);
    const auto codes = canonical_codes(lengths);
    for (std::size_t a = 0; a < codes.size(); ++a) {
        for (std::size_t b = a + 1; b < codes.size(); ++b) {
            if (lengths[a] == 0 || lengths[b] == 0) continue;
            const int la = lengths[a], lb = lengths[b];
            const int shared = std::min(la, lb);
            EXPECT_NE(codes[a] >> (la - shared), codes[b] >> (lb - shared))
                << a << " prefixes " << b;
        }
    }
}

// --- container ---------------------------------------------------------------

std::vector<std::uint8_t> sample_data(std::size_t size, std::uint64_t seed = 9) {
    CorpusConfig cfg;
    cfg.total_bytes = size;
    const SyntheticCorpus corpus(cfg, seed);
    return write_archive(corpus.files());
}

TEST(Frost, RoundTrip) {
    const auto data = sample_data(96 * 1024);
    const auto packed = frost_compress(data);
    EXPECT_EQ(frost_decompress(packed), data);
    // Source text compresses meaningfully.
    EXPECT_LT(packed.size(), data.size());
}

TEST(Frost, EmptyInput) {
    const std::vector<std::uint8_t> empty;
    const auto packed = frost_compress(empty);
    EXPECT_TRUE(frost_decompress(packed).empty());
    EXPECT_TRUE(frost_block_directory(packed).empty());
}

TEST(Frost, BlockCountArithmetic) {
    CompressorConfig cfg;
    cfg.block_size = 1000;
    EXPECT_EQ(frost_block_count(0, cfg), 0u);
    EXPECT_EQ(frost_block_count(1, cfg), 1u);
    EXPECT_EQ(frost_block_count(1000, cfg), 1u);
    EXPECT_EQ(frost_block_count(1001, cfg), 2u);
    cfg.block_size = 0;
    EXPECT_THROW((void)frost_block_count(10, cfg), core::InvalidArgument);
}

TEST(Frost, DirectoryMatchesConfig) {
    const auto data = sample_data(64 * 1024);
    CompressorConfig cfg;
    cfg.block_size = 4096;
    const auto packed = frost_compress(data, cfg);
    const auto dir = frost_block_directory(packed);
    EXPECT_EQ(dir.size(), frost_block_count(data.size(), cfg));
    std::size_t total = 0;
    for (const BlockInfo& b : dir) total += b.orig_size;
    EXPECT_EQ(total, data.size());
}

TEST(Frost, IncompressibleDataStoredRaw) {
    core::RngStream rng(1, "noise");
    std::vector<std::uint8_t> noise(8192);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    CompressorConfig cfg;
    cfg.block_size = 4096;
    const auto packed = frost_compress(noise, cfg);
    const auto dir = frost_block_directory(packed);
    // Random bytes don't compress: stored blocks (method 0).
    for (const BlockInfo& b : dir) EXPECT_EQ(b.method, 0);
    EXPECT_EQ(frost_decompress(packed), noise);
}

TEST(Frost, PayloadCorruptionCaughtByCrc) {
    const auto data = sample_data(32 * 1024);
    auto packed = frost_compress(data);
    packed[packed.size() / 2] ^= 0x10;
    EXPECT_THROW((void)frost_decompress(packed), core::CorruptData);
}

TEST(Frost, StreamMagicChecked) {
    auto packed = frost_compress(sample_data(8 * 1024));
    packed[0] = 'X';
    EXPECT_THROW((void)frost_block_directory(packed), core::CorruptData);
}

TEST(Frost, TruncationDetected) {
    auto packed = frost_compress(sample_data(32 * 1024));
    packed.resize(packed.size() - 10);
    EXPECT_THROW((void)frost_block_directory(packed), core::CorruptData);
}

TEST(Frost, DeterministicOutput) {
    const auto data = sample_data(32 * 1024);
    EXPECT_EQ(frost_compress(data), frost_compress(data));
}

// Property: round trip holds across block sizes, including sizes that leave
// a small tail block.
class FrostBlockSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrostBlockSizes, RoundTrip) {
    const auto data = sample_data(40 * 1024 + 123);
    CompressorConfig cfg;
    cfg.block_size = GetParam();
    EXPECT_EQ(frost_decompress(frost_compress(data, cfg)), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FrostBlockSizes,
                         ::testing::Values(1024, 3000, 4096, 10000, 16384, 65536, 1 << 20));

}  // namespace
}  // namespace zerodeg::workload
