// The hazard lookup table and the SoA fast path it feeds.
//
// Two properties protect the census results:
//   1. Accuracy: the tabulated Arrhenius/Peck factors match the analytic
//      models to 1e-9 relative across the whole acceptance grid, and fall
//      back to the analytic models *exactly* outside the tabulated window.
//   2. Identity: the batched (SoA) hazard kernel and the scalar path return
//      bit-identical values, and the batched tick engine reproduces the
//      per-object engine's season byte for byte — fault log, event log and
//      census — for any jobs value.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "experiment/census.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/runner.hpp"
#include "faults/hazard.hpp"
#include "faults/hazard_table.hpp"

namespace zerodeg::faults {
namespace {

using core::Celsius;
using core::RelHumidity;

constexpr double kEa = 0.5;
constexpr Celsius kTRef{45.0};
constexpr double kPeckN = 2.7;
constexpr RelHumidity kRhRef{50.0};

TEST(HazardTable, ArrheniusMatchesAnalyticOverAcceptanceGrid) {
    const HazardTable table(kEa, kTRef, kPeckN, kRhRef);
    const ArrheniusModel analytic(kEa, kTRef);
    double worst = 0.0;
    // The acceptance grid: -40..+60 degC in 0.01-degree steps (10001 points,
    // deliberately incommensurate with the 0.125-degree knot spacing).
    for (int i = 0; i <= 10000; ++i) {
        const Celsius t{-40.0 + 0.01 * i};
        const double exact = analytic.acceleration(t);
        const double approx = table.arrhenius(t);
        const double rel = std::abs(approx - exact) / exact;
        if (rel > worst) worst = rel;
    }
    EXPECT_LE(worst, 1e-9) << "worst relative error " << worst;
}

TEST(HazardTable, PeckMatchesAnalyticOverAcceptanceGrid) {
    const HazardTable table(kEa, kTRef, kPeckN, kRhRef);
    const PeckModel analytic(kPeckN, kRhRef);
    double worst = 0.0;
    // 40..105 %RH covers everything above the humidity knee plus the
    // supersaturated readings a fogged sensor can report.
    for (int i = 0; i <= 6500; ++i) {
        const RelHumidity rh{40.0 + 0.01 * i};
        const double exact = analytic.acceleration(rh);
        const double approx = table.peck(rh);
        const double rel = std::abs(approx - exact) / exact;
        if (rel > worst) worst = rel;
    }
    EXPECT_LE(worst, 1e-9) << "worst relative error " << worst;
}

TEST(HazardTable, OutOfRangeFallsBackToAnalyticExactly) {
    const HazardTable table(kEa, kTRef, kPeckN, kRhRef);
    const ArrheniusModel arr(kEa, kTRef);
    const PeckModel peck(kPeckN, kRhRef);
    // Outside the tabulated window the table *is* the analytic model — not
    // an approximation of it — so these must be equal to the last bit.
    EXPECT_DOUBLE_EQ(table.arrhenius(Celsius{-80.0}), arr.acceleration(Celsius{-80.0}));
    EXPECT_DOUBLE_EQ(table.arrhenius(Celsius{150.0}), arr.acceleration(Celsius{150.0}));
    EXPECT_DOUBLE_EQ(table.peck(RelHumidity{20.0}), peck.acceleration(RelHumidity{20.0}));
    EXPECT_DOUBLE_EQ(table.peck(RelHumidity{130.0}), peck.acceleration(RelHumidity{130.0}));
    // The analytic domain guards survive the table layer.
    EXPECT_THROW((void)table.arrhenius(Celsius{-300.0}), core::InvalidArgument);
}

TEST(HazardTable, BatchKernelIsBitIdenticalToScalar) {
    const HostHazardModel model;
    constexpr std::size_t kSlots = 257;  // odd size: no vector-width luck
    std::vector<double> intake(kSlots), humidity(kSlots), age(kSlots), cycling(kSlots);
    std::vector<std::uint8_t> unreliable(kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
        intake[i] = -35.0 + 80.0 * static_cast<double>(i) / kSlots;
        humidity[i] = 25.0 + 75.0 * static_cast<double>((i * 29) % kSlots) / kSlots;
        age[i] = 45000.0 * static_cast<double>((i * 7) % kSlots) / kSlots;
        cycling[i] = 8.0 * static_cast<double>((i * 3) % kSlots) / kSlots;
        unreliable[i] = (i % 5) == 0 ? 1 : 0;
    }
    const StressSoa soa{intake.data(), humidity.data(), age.data(), cycling.data(),
                        unreliable.data()};
    std::vector<double> batched(kSlots);
    model.hazard_per_hour(soa, kSlots, batched.data());
    for (std::size_t i = 0; i < kSlots; ++i) {
        StressState s;
        s.intake = Celsius{intake[i]};
        s.humidity = RelHumidity{humidity[i]};
        s.age_hours = age[i];
        s.cycling_rate_k_per_h = cycling[i];
        s.known_unreliable = unreliable[i] != 0;
        // Bitwise identity, not tolerance: the two engines must agree.
        EXPECT_EQ(batched[i], model.hazard_per_hour(s)) << "slot " << i;
    }
}

}  // namespace
}  // namespace zerodeg::faults

namespace zerodeg::experiment {
namespace {

using core::TimePoint;

/// A short season (3 days) keeps the differential test fast; engine parity
/// is a per-tick property, not a season-length one.
ExperimentConfig short_config(std::uint64_t seed, TickEngine engine) {
    ExperimentConfig cfg;
    cfg.master_seed = seed;
    cfg.end = TimePoint::from_date(2010, 2, 22);
    cfg.engine = engine;
    cfg.load.corpus.total_bytes = 64 * 1024;
    cfg.load.target_blocks = 20;
    return cfg;
}

void expect_census_identical(const FaultCensus& a, const FaultCensus& b) {
    EXPECT_EQ(a.tent_hosts, b.tent_hosts);
    EXPECT_EQ(a.basement_hosts, b.basement_hosts);
    EXPECT_EQ(a.tent_hosts_failed, b.tent_hosts_failed);
    EXPECT_EQ(a.basement_hosts_failed, b.basement_hosts_failed);
    EXPECT_EQ(a.system_failures, b.system_failures);
    EXPECT_EQ(a.transient_failures, b.transient_failures);
    EXPECT_EQ(a.permanent_failures, b.permanent_failures);
    EXPECT_EQ(a.sensor_incidents, b.sensor_incidents);
    EXPECT_EQ(a.switch_failures, b.switch_failures);
    EXPECT_EQ(a.fan_faults, b.fan_faults);
    EXPECT_EQ(a.disk_faults, b.disk_faults);
    EXPECT_EQ(a.load_runs, b.load_runs);
    EXPECT_EQ(a.wrong_hashes, b.wrong_hashes);
    EXPECT_EQ(a.wrong_hashes_tent, b.wrong_hashes_tent);
    EXPECT_EQ(a.wrong_hashes_basement, b.wrong_hashes_basement);
    EXPECT_EQ(a.page_ops, b.page_ops);
    EXPECT_EQ(a.page_ops_non_ecc, b.page_ops_non_ecc);
}

TEST(TickEngineParity, BatchedSeasonIsByteIdenticalToPerObject) {
    ExperimentRunner per_object(short_config(918273, TickEngine::kPerObject));
    per_object.run();
    ExperimentRunner batched(short_config(918273, TickEngine::kBatched));
    batched.run();

    expect_census_identical(take_census(per_object), take_census(batched));

    // The logs pin ordering, not just totals: a batched engine that
    // reordered same-tick events would still pass the census comparison.
    const auto& fa = per_object.fault_log().records();
    const auto& fb = batched.fault_log().records();
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
        SCOPED_TRACE("fault record " + std::to_string(i));
        EXPECT_EQ(fa[i].time.seconds_since_epoch(), fb[i].time.seconds_since_epoch());
        EXPECT_EQ(fa[i].host_id, fb[i].host_id);
        EXPECT_EQ(fa[i].source, fb[i].source);
        EXPECT_EQ(fa[i].component, fb[i].component);
        EXPECT_EQ(fa[i].severity, fb[i].severity);
        EXPECT_EQ(fa[i].description, fb[i].description);
        EXPECT_EQ(fa[i].in_tent, fb[i].in_tent);
    }

    const auto& ea = per_object.event_log().entries();
    const auto& eb = batched.event_log().entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        SCOPED_TRACE("event " + std::to_string(i));
        EXPECT_EQ(ea[i].time.seconds_since_epoch(), eb[i].time.seconds_since_epoch());
        EXPECT_EQ(ea[i].level, eb[i].level);
        EXPECT_EQ(ea[i].source, eb[i].source);
        EXPECT_EQ(ea[i].message, eb[i].message);
    }
}

TEST(TickEngineParity, BatchedEngineIsJobsInvariant) {
    CensusPlan plan;
    plan.base_seed = 555000;
    plan.seeds = 3;
    plan.make_config = [](std::size_t, std::uint64_t seed) {
        return short_config(seed, TickEngine::kBatched);
    };
    const CensusResult serial = ParallelCensus(plan, 1).run();
    const CensusResult threaded = ParallelCensus(plan, 4).run();
    ASSERT_EQ(serial.censuses.size(), threaded.censuses.size());
    for (std::size_t i = 0; i < serial.censuses.size(); ++i) {
        SCOPED_TRACE("seed index " + std::to_string(i));
        expect_census_identical(serial.censuses[i], threaded.censuses[i]);
    }
}

}  // namespace
}  // namespace zerodeg::experiment
