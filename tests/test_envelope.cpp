#include "thermal/envelope.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::thermal {
namespace {

using core::Celsius;
using core::Duration;
using core::RelHumidity;

TEST(Envelope, ClassifyOrdering) {
    const EnvelopeSpec spec = ashrae_allowable();
    EXPECT_EQ(classify(spec, Celsius{21.0}, RelHumidity{50.0}, Celsius{10.0}),
              EnvelopeVerdict::kWithin);
    EXPECT_EQ(classify(spec, Celsius{-10.0}, RelHumidity{50.0}, Celsius{-15.0}),
              EnvelopeVerdict::kTooCold);
    EXPECT_EQ(classify(spec, Celsius{40.0}, RelHumidity{50.0}, Celsius{10.0}),
              EnvelopeVerdict::kTooHot);
    EXPECT_EQ(classify(spec, Celsius{21.0}, RelHumidity{5.0}, Celsius{-20.0}),
              EnvelopeVerdict::kTooDry);
    EXPECT_EQ(classify(spec, Celsius{21.0}, RelHumidity{95.0}, Celsius{16.0}),
              EnvelopeVerdict::kTooHumid);
    EXPECT_EQ(classify(spec, Celsius{30.0}, RelHumidity{55.0}, Celsius{21.0}),
              EnvelopeVerdict::kDewPointHigh);
}

TEST(Envelope, BoundariesAreInclusive) {
    const EnvelopeSpec spec = ashrae_allowable();
    EXPECT_EQ(classify(spec, spec.min_temp, RelHumidity{50.0}, Celsius{0.0}),
              EnvelopeVerdict::kWithin);
    EXPECT_EQ(classify(spec, spec.max_temp, spec.max_rh, spec.max_dew_point),
              EnvelopeVerdict::kWithin);
}

TEST(Envelope, SpecsNest) {
    // recommended within allowable within A4-like.
    const EnvelopeSpec rec = ashrae_recommended();
    const EnvelopeSpec allow = ashrae_allowable();
    const EnvelopeSpec a4 = ashrae_a4_like();
    EXPECT_GE(rec.min_temp.value(), allow.min_temp.value());
    EXPECT_LE(rec.max_temp.value(), allow.max_temp.value());
    EXPECT_GE(allow.min_temp.value(), a4.min_temp.value());
    EXPECT_LE(allow.max_temp.value(), a4.max_temp.value());
    EXPECT_LE(allow.max_rh.value(), a4.max_rh.value());
}

TEST(Envelope, TrackerAccumulates) {
    EnvelopeTracker tracker(ashrae_allowable());
    // 2 h inside, 1 h too cold, 1 h too humid.
    tracker.observe(Duration::hours(2), Celsius{21.0}, RelHumidity{50.0}, Celsius{10.0});
    tracker.observe(Duration::hours(1), Celsius{-8.0}, RelHumidity{70.0}, Celsius{-12.0});
    tracker.observe(Duration::hours(1), Celsius{20.0}, RelHumidity{92.0}, Celsius{16.0});
    EXPECT_DOUBLE_EQ(tracker.hours_total(), 4.0);
    EXPECT_DOUBLE_EQ(tracker.hours_within(), 2.0);
    EXPECT_DOUBLE_EQ(tracker.hours(EnvelopeVerdict::kTooCold), 1.0);
    EXPECT_DOUBLE_EQ(tracker.hours(EnvelopeVerdict::kTooHumid), 1.0);
    EXPECT_DOUBLE_EQ(tracker.fraction_within(), 0.5);
}

TEST(Envelope, EmptyTrackerFractionZero) {
    const EnvelopeTracker tracker(ashrae_allowable());
    EXPECT_DOUBLE_EQ(tracker.fraction_within(), 0.0);
}

TEST(Envelope, NegativeDtThrows) {
    EnvelopeTracker tracker(ashrae_allowable());
    EXPECT_THROW(tracker.observe(Duration::seconds(-1), Celsius{20.0}, RelHumidity{50.0},
                                 Celsius{10.0}),
                 core::InvalidArgument);
}

TEST(Envelope, VerdictNames) {
    EXPECT_STREQ(to_string(EnvelopeVerdict::kWithin), "within envelope");
    EXPECT_STREQ(to_string(EnvelopeVerdict::kTooCold), "below temperature minimum");
}

}  // namespace
}  // namespace zerodeg::thermal
