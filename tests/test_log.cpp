#include "core/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace zerodeg::core {
namespace {

TimePoint at(std::int64_t s) { return TimePoint{s}; }

TEST(EventLogTest, RecordAndCount) {
    EventLog log;
    log.record(at(0), LogLevel::kInfo, "host-01", "installed");
    log.record(at(10), LogLevel::kFault, "host-15", "system failure");
    log.record(at(20), LogLevel::kFault, "switch-1", "died");
    EXPECT_EQ(log.entries().size(), 3u);
    EXPECT_EQ(log.count(LogLevel::kFault), 2u);
    EXPECT_EQ(log.count(LogLevel::kInfo), 1u);
    EXPECT_EQ(log.count(LogLevel::kDebug), 0u);
}

TEST(EventLogTest, FilterBySource) {
    EventLog log;
    log.record(at(0), LogLevel::kInfo, "host-15", "a");
    log.record(at(1), LogLevel::kWarning, "host-15", "b");
    log.record(at(2), LogLevel::kInfo, "host-01", "c");
    const auto entries = log.from_source("host-15");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[1].message, "b");
}

TEST(EventLogTest, FilterByLevel) {
    EventLog log;
    log.record(at(0), LogLevel::kFault, "x", "a");
    log.record(at(1), LogLevel::kInfo, "y", "b");
    const auto faults = log.at_level(LogLevel::kFault);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].source, "x");
}

TEST(EventLogTest, PrintFormat) {
    EventLog log;
    log.record(TimePoint::from_civil({2010, 3, 7, 4, 40, 0}), LogLevel::kFault, "host-15",
               "system failure");
    std::stringstream ss;
    log.print(ss);
    EXPECT_EQ(ss.str(), "2010-03-07 04:40:00 [FAULT] host-15: system failure\n");
}

TEST(EventLogTest, Clear) {
    EventLog log;
    log.record(at(0), LogLevel::kInfo, "x", "a");
    log.clear();
    EXPECT_TRUE(log.entries().empty());
}

TEST(EventLogTest, LevelNames) {
    EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
    EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
    EXPECT_STREQ(to_string(LogLevel::kWarning), "WARN");
    EXPECT_STREQ(to_string(LogLevel::kFault), "FAULT");
}

}  // namespace
}  // namespace zerodeg::core
