// Crash-safety of checkpointed sweeps: a census killed after a random subset
// of cells and resumed from its journal must be *byte-identical* to an
// uninterrupted run, for any worker count — and a journal from a different
// campaign (wrong seed, wrong config, wrong cell count) or a damaged file
// must be rejected with a diagnostic, never silently reused.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/error.hpp"
#include "experiment/census.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/sweep_journal.hpp"

namespace zerodeg::experiment {
namespace {

namespace fs = std::filesystem;
using core::TimePoint;

constexpr std::uint64_t kBaseSeed = 7777;
constexpr std::size_t kSeeds = 6;

/// Short, cheap seasons (same trick as test_parallel_determinism): resume
/// parity is about bookkeeping, not season length.
ExperimentConfig cheap_config(std::size_t /*index*/, std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.master_seed = seed;
    cfg.end = TimePoint::from_date(2010, 2, 26);  // one week
    cfg.load.corpus.total_bytes = 64 * 1024;
    cfg.load.target_blocks = 20;
    return cfg;
}

CensusPlan cheap_plan() {
    CensusPlan plan;
    plan.base_seed = kBaseSeed;
    plan.seeds = kSeeds;
    plan.make_config = cheap_config;
    return plan;
}

/// Fresh per-test journal path under the gtest temp dir.
fs::path journal_path(const std::string& name) {
    fs::path p = fs::path(::testing::TempDir()) / (name + ".journal");
    fs::remove(p);
    fs::remove(fs::path(p.string() + ".tmp"));
    return p;
}

std::string slurp(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void spit(const fs::path& p, const std::string& text) {
    std::ofstream out(p, std::ios::trunc);
    out << text;
}

void expect_identical(const FaultCensus& a, const FaultCensus& b, std::size_t seed_index) {
    SCOPED_TRACE("seed index " + std::to_string(seed_index));
    EXPECT_EQ(a.tent_hosts, b.tent_hosts);
    EXPECT_EQ(a.basement_hosts, b.basement_hosts);
    EXPECT_EQ(a.tent_hosts_failed, b.tent_hosts_failed);
    EXPECT_EQ(a.basement_hosts_failed, b.basement_hosts_failed);
    EXPECT_EQ(a.system_failures, b.system_failures);
    EXPECT_EQ(a.transient_failures, b.transient_failures);
    EXPECT_EQ(a.permanent_failures, b.permanent_failures);
    EXPECT_EQ(a.sensor_incidents, b.sensor_incidents);
    EXPECT_EQ(a.switch_failures, b.switch_failures);
    EXPECT_EQ(a.fan_faults, b.fan_faults);
    EXPECT_EQ(a.disk_faults, b.disk_faults);
    EXPECT_EQ(a.load_runs, b.load_runs);
    EXPECT_EQ(a.wrong_hashes, b.wrong_hashes);
    EXPECT_EQ(a.wrong_hashes_tent, b.wrong_hashes_tent);
    EXPECT_EQ(a.wrong_hashes_basement, b.wrong_hashes_basement);
    EXPECT_EQ(a.page_ops, b.page_ops);
    EXPECT_EQ(a.page_ops_non_ecc, b.page_ops_non_ecc);
}

void expect_bitwise(double a, double b, const char* what) {
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
        << what << ": " << a << " vs " << b << " differ in bits";
}

void expect_identical(const CensusSummary& a, const CensusSummary& b) {
    EXPECT_EQ(a.seeds, b.seeds);
    expect_bitwise(a.mean_tent_failure_rate, b.mean_tent_failure_rate, "mean_tent_failure_rate");
    expect_bitwise(a.mean_fleet_failure_rate, b.mean_fleet_failure_rate,
                   "mean_fleet_failure_rate");
    expect_bitwise(a.mean_system_failures, b.mean_system_failures, "mean_system_failures");
    expect_bitwise(a.mean_wrong_hashes, b.mean_wrong_hashes, "mean_wrong_hashes");
    expect_bitwise(a.mean_runs, b.mean_runs, "mean_runs");
    expect_bitwise(a.mean_page_fault_ratio, b.mean_page_fault_ratio, "mean_page_fault_ratio");
    expect_bitwise(a.frac_runs_with_sensor_incident, b.frac_runs_with_sensor_incident,
                   "frac_runs_with_sensor_incident");
    expect_bitwise(a.frac_runs_with_switch_failures, b.frac_runs_with_switch_failures,
                   "frac_runs_with_switch_failures");
}

/// The uninterrupted campaign all resume tests compare against.
const CensusResult& uninterrupted_reference() {
    static const CensusResult reference = ParallelCensus(cheap_plan(), 1).run();
    return reference;
}

TEST(SweepJournal, RecordsSurviveReopen) {
    const fs::path path = journal_path("roundtrip");
    const SweepJournalKey key{kBaseSeed, 0xfeedULL, kSeeds};

    FaultCensus c;
    c.tent_hosts = 18;
    c.system_failures = 3;
    c.page_ops_non_ecc = 570'000'000ULL;
    {
        SweepJournal journal(path, key);
        journal.record(4, c);
        EXPECT_EQ(journal.completed(), 1u);
        EXPECT_FALSE(journal.complete());
    }
    SweepJournal back(path, key, /*resume=*/true);
    EXPECT_EQ(back.completed(), 1u);
    ASSERT_NE(back.find(4), nullptr);
    expect_identical(*back.find(4), c, 4);
    EXPECT_EQ(back.find(0), nullptr);
}

TEST(SweepJournal, OpenWithoutResumeStartsFresh) {
    const fs::path path = journal_path("truncate");
    const SweepJournalKey key{1, 2, 3};
    {
        SweepJournal journal(path, key);
        journal.record(0, FaultCensus{});
    }
    SweepJournal fresh(path, key, /*resume=*/false);
    EXPECT_EQ(fresh.completed(), 0u);
}

TEST(SweepJournal, ResumeWithNoFileStartsFresh) {
    const fs::path path = journal_path("missing");
    SweepJournal journal(path, SweepJournalKey{1, 2, 3}, /*resume=*/true);
    EXPECT_EQ(journal.completed(), 0u);
    EXPECT_TRUE(fs::exists(path));  // identity is on disk before any cell
}

TEST(SweepJournal, RejectsBadMagic) {
    const fs::path path = journal_path("magic");
    spit(path, "definitely not a journal\nbase_seed 1\n");
    try {
        SweepJournal journal(path, SweepJournalKey{1, 2, 3}, /*resume=*/true);
        FAIL() << "expected CorruptData";
    } catch (const core::CorruptData& e) {
        EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find(path.string()), std::string::npos);
    }
}

TEST(SweepJournal, RejectsMismatchedCampaign) {
    const fs::path path = journal_path("stale");
    const SweepJournalKey key{kBaseSeed, 0xabcULL, kSeeds};
    { SweepJournal journal(path, key); }

    for (const SweepJournalKey& wrong :
         {SweepJournalKey{kBaseSeed + 1, 0xabcULL, kSeeds},   // different seed
          SweepJournalKey{kBaseSeed, 0xabdULL, kSeeds},       // different config
          SweepJournalKey{kBaseSeed, 0xabcULL, kSeeds + 1}})  // different cell count
    {
        try {
            SweepJournal journal(path, wrong, /*resume=*/true);
            FAIL() << "expected StaleJournal";
        } catch (const core::Error& e) {
            EXPECT_EQ(e.code(), core::ErrorCode::kStaleJournal);
            EXPECT_NE(std::string(e.what()).find("different campaign"), std::string::npos);
        }
    }
    // The matching key still loads.
    SweepJournal ok(path, key, /*resume=*/true);
    EXPECT_EQ(ok.completed(), 0u);
}

TEST(SweepJournal, RejectsTamperedMidFileRecord) {
    const fs::path path = journal_path("tampered");
    const SweepJournalKey key{kBaseSeed, 0x123ULL, kSeeds};
    {
        SweepJournal journal(path, key);
        FaultCensus c;
        c.system_failures = 2;
        journal.record(1, c);
        journal.record(2, c);
    }
    // Flip the FIRST record's checksum word.  Damage before the last line
    // cannot be a torn append, so the tail-forgiveness contract does not
    // apply: this must stay a hard CorruptData.
    std::string text = slurp(path);
    const std::size_t last_nl = text.rfind('\n', text.size() - 2);  // start of last record
    ASSERT_NE(last_nl, std::string::npos);
    const std::size_t sep = text.rfind(' ', last_nl);
    ASSERT_NE(sep, std::string::npos);
    spit(path, text.substr(0, sep + 1) + "00000000deadbeef" + text.substr(last_nl));
    try {
        SweepJournal journal(path, key, /*resume=*/true);
        FAIL() << "expected CorruptData";
    } catch (const core::CorruptData& e) {
        EXPECT_EQ(e.code(), core::ErrorCode::kCorruptData);
        EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
    }
}

TEST(SweepJournal, TornTailRecordIsDroppedAndTruncatedOnDisk) {
    const fs::path path = journal_path("torntail");
    const SweepJournalKey key{kBaseSeed, 0x321ULL, kSeeds};
    {
        SweepJournal journal(path, key);
        FaultCensus c;
        c.system_failures = 1;
        journal.record(0, c);
        c.system_failures = 5;
        journal.record(3, c);
    }
    // Chop bytes off the last record — a crash mid-append (or a tail page
    // the page cache never flushed).  The damaged checksum word cannot
    // verify, so the record is dropped with a warning and the file healed.
    const std::string text = slurp(path);
    spit(path, text.substr(0, text.size() - 7));

    ::testing::internal::CaptureStderr();
    SweepJournal resumed(path, key, /*resume=*/true);
    const std::string warning = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(resumed.recovered_tail_records(), 1u);
    EXPECT_EQ(resumed.completed(), 1u);  // record 0 kept, record 3 dropped
    ASSERT_NE(resumed.find(0), nullptr);
    EXPECT_EQ(resumed.find(0)->system_failures, 1u);
    EXPECT_EQ(resumed.find(3), nullptr);
    EXPECT_NE(warning.find("dropping torn tail record"), std::string::npos);
    EXPECT_NE(warning.find("re-simulated"), std::string::npos);

    // The recovery rewrote the file: a second resume sees a clean journal.
    SweepJournal again(path, key, /*resume=*/true);
    EXPECT_EQ(again.recovered_tail_records(), 0u);
    EXPECT_EQ(again.completed(), 1u);
}

TEST(SweepJournal, TornTailLosingTheSeparatorIsStillRecovered) {
    const fs::path path = journal_path("tornsep");
    const SweepJournalKey key{kBaseSeed, 0x321ULL, kSeeds};
    {
        SweepJournal journal(path, key);
        journal.record(2, FaultCensus{});
    }
    // Tear so deep into the record that even the checksum separator is
    // gone — the "malformed record" flavour of tail damage.
    std::string text = slurp(path);
    const std::size_t sep = text.rfind(' ');
    ASSERT_NE(sep, std::string::npos);
    spit(path, text.substr(0, sep - 4));

    ::testing::internal::CaptureStderr();
    SweepJournal resumed(path, key, /*resume=*/true);
    const std::string warning = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(resumed.recovered_tail_records(), 1u);
    EXPECT_EQ(resumed.completed(), 0u);
    EXPECT_NE(warning.find("dropping torn tail record"), std::string::npos);
}

TEST(SweepJournal, RejectsTruncatedHeader) {
    const fs::path path = journal_path("truncated");
    spit(path, "zerodeg-sweep-journal v2\nbase_seed 7777\n");
    EXPECT_THROW(SweepJournal(path, SweepJournalKey{7777, 1, 6}, /*resume=*/true),
                 core::CorruptData);
}

TEST(SweepJournal, RejectsOldFormatVersion) {
    // v1 journals (17-field records, before the traffic-workload columns)
    // must fail the magic check up front instead of mis-parsing records.
    const fs::path path = journal_path("v1magic");
    spit(path, "zerodeg-sweep-journal v1\nbase_seed 7777\nconfig_hash 0000000000000001\ncells 6\n");
    EXPECT_THROW(SweepJournal(path, SweepJournalKey{7777, 1, 6}, /*resume=*/true),
                 core::CorruptData);
}

TEST(ConfigFingerprint, SeesCampaignDefiningKnobs) {
    const ExperimentConfig base = cheap_config(0, kBaseSeed);
    EXPECT_EQ(fingerprint(base), fingerprint(cheap_config(0, kBaseSeed)));

    ExperimentConfig other = base;
    other.master_seed += 1;
    EXPECT_NE(fingerprint(base), fingerprint(other));

    other = base;
    other.end += core::Duration::days(1);
    EXPECT_NE(fingerprint(base), fingerprint(other));

    other = base;
    other.load.target_blocks += 1;
    EXPECT_NE(fingerprint(base), fingerprint(other));

    other = base;
    other.tent_mods.pop_back();
    EXPECT_NE(fingerprint(base), fingerprint(other));

    other = base;
    other.weather.cold_snaps.clear();
    EXPECT_NE(fingerprint(base), fingerprint(other));
}

TEST(ConfigValidate, NamesTheOffendingKnob) {
    const auto message_of = [](ExperimentConfig cfg) {
        try {
            validate(cfg);
            return std::string();
        } catch (const core::InvalidArgument& e) {
            return std::string(e.what());
        }
    };
    ExperimentConfig cfg = cheap_config(0, kBaseSeed);
    EXPECT_EQ(message_of(cfg), "");

    cfg.end = cfg.start;
    EXPECT_NE(message_of(cfg).find("end"), std::string::npos);

    cfg = cheap_config(0, kBaseSeed);
    cfg.tick = core::Duration::seconds(0);
    EXPECT_NE(message_of(cfg).find("tick"), std::string::npos);

    cfg = cheap_config(0, kBaseSeed);
    cfg.operator_hour = 25;
    EXPECT_NE(message_of(cfg).find("operator_hour"), std::string::npos);

    cfg = cheap_config(0, kBaseSeed);
    cfg.load.target_blocks = 0;
    EXPECT_NE(message_of(cfg).find("target_blocks"), std::string::npos);
}

TEST(ParallelCensusJournal, RefusesJournalOpenedWithWrongKey) {
    const fs::path path = journal_path("wrongkey");
    SweepJournal journal(path, SweepJournalKey{1, 2, 3});  // not cheap_plan's key
    EXPECT_THROW((void)ParallelCensus(cheap_plan(), 1).run(journal), core::StaleJournal);
}

TEST(ParallelCensusJournal, CompleteJournalSkipsAllSimulation) {
    const fs::path path = journal_path("complete");
    const ParallelCensus census(cheap_plan(), 1);
    SweepJournal journal(path, census.journal_key());
    (void)census.run(journal);
    EXPECT_TRUE(journal.complete());

    // A plan whose run_cell aborts proves no cell is re-simulated.
    CensusPlan poisoned = cheap_plan();
    poisoned.run_cell = [](const ExperimentConfig&) -> FaultCensus {
        throw core::IoError("must not be called: journal is complete");
    };
    SweepJournal reopened(path, census.journal_key(), /*resume=*/true);
    const CensusResult replayed = ParallelCensus(poisoned, 1).run(reopened);
    const CensusResult& reference = uninterrupted_reference();
    for (std::size_t i = 0; i < kSeeds; ++i) {
        expect_identical(replayed.censuses[i], reference.censuses[i], i);
    }
    expect_identical(replayed.summary, reference.summary);
}

/// The acceptance property: kill the campaign after a random subset of cells
/// has completed, resume from the journal, and require byte-identical output
/// to the uninterrupted run — for jobs in {1, 2, 8}.
class JournalResume : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JournalResume, KilledAndResumedCampaignIsByteIdentical) {
    const std::size_t jobs = GetParam();
    const fs::path path = journal_path("resume_jobs" + std::to_string(jobs));

    // Phase 1: a campaign that dies mid-sweep.  The first two cells to
    // *start* (scheduling-dependent under jobs > 1 — a genuinely random
    // subset) run to completion and reach the journal; every later cell
    // crashes.
    CensusPlan crashing = cheap_plan();
    auto started = std::make_shared<std::atomic<int>>(0);
    crashing.run_cell = [started](const ExperimentConfig& cfg) -> FaultCensus {
        if (started->fetch_add(1) >= 2) throw core::IoError("simulated crash");
        return run_season_census(cfg);
    };
    const ParallelCensus interrupted(crashing, jobs);
    {
        SweepJournal journal(path, interrupted.journal_key());
        EXPECT_THROW((void)interrupted.run(journal), core::IoError);
        EXPECT_EQ(journal.completed(), 2u);
        EXPECT_FALSE(journal.complete());
    }
    // The atomic rewrite never leaves its scratch file behind.
    EXPECT_FALSE(fs::exists(fs::path(path.string() + ".tmp")));

    // Phase 2: resume with the real cell function and finish the campaign.
    const ParallelCensus census(cheap_plan(), jobs);
    SweepJournal resumed(path, census.journal_key(), /*resume=*/true);
    EXPECT_EQ(resumed.completed(), 2u);
    const CensusResult result = census.run(resumed);
    EXPECT_TRUE(resumed.complete());

    const CensusResult& reference = uninterrupted_reference();
    ASSERT_EQ(result.censuses.size(), reference.censuses.size());
    for (std::size_t i = 0; i < kSeeds; ++i) {
        expect_identical(result.censuses[i], reference.censuses[i], i);
    }
    expect_identical(result.summary, reference.summary);
}

INSTANTIATE_TEST_SUITE_P(Jobs, JournalResume, ::testing::Values<std::size_t>(1, 2, 8),
                         [](const auto& param_info) {
                             return "jobs" + std::to_string(param_info.param);
                         });

FaultCensus marker_census(std::uint64_t tag) {
    FaultCensus census;
    census.load_runs = tag;
    census.system_failures = tag + 1;
    return census;
}

TEST(PoisonRecords, QuarantineHoldsASlotAndRoundTripsThroughResume) {
    const fs::path path = journal_path("poison_roundtrip");
    const SweepJournalKey key{kBaseSeed, 0x5eed, 3};
    {
        SweepJournal journal(path, key);
        journal.record(0, marker_census(10));
        journal.quarantine(2, 3, "lease-expired under 3 distinct workers");
        EXPECT_EQ(journal.completed(), 1u);
        EXPECT_FALSE(journal.complete());
        EXPECT_FALSE(journal.resolved());  // cell 1 still unaccounted for
        journal.record(1, marker_census(11));
        EXPECT_TRUE(journal.resolved());  // every slot held...
        EXPECT_FALSE(journal.complete());  // ...but the table has a hole
    }
    SweepJournal resumed(path, key, /*resume=*/true);
    EXPECT_EQ(resumed.completed(), 2u);
    EXPECT_TRUE(resumed.resolved());
    EXPECT_FALSE(resumed.complete());
    ASSERT_EQ(resumed.quarantined().size(), 1u);
    EXPECT_EQ(resumed.quarantined().at(2).attempts, 3u);
    EXPECT_EQ(resumed.quarantined().at(2).reason, "lease-expired under 3 distinct workers");
}

TEST(PoisonRecords, LateRealDataHealsAQuarantinedSlotByteIdentically) {
    const SweepJournalKey key{kBaseSeed, 0x5eed, 2};
    const fs::path healed_path = journal_path("poison_healed");
    {
        SweepJournal journal(healed_path, key);
        journal.record(0, marker_census(20));
        journal.quarantine(1, 3, "lease-expired under 3 distinct workers");
        // The zombie's late delivery: real data replaces the poison record.
        journal.record(1, marker_census(21));
        EXPECT_TRUE(journal.quarantined().empty());
        EXPECT_TRUE(journal.complete());
    }
    const fs::path clean_path = journal_path("poison_never");
    {
        SweepJournal journal(clean_path, key);
        journal.record(0, marker_census(20));
        journal.record(1, marker_census(21));
    }
    EXPECT_EQ(slurp(healed_path), slurp(clean_path));
}

TEST(PoisonRecords, QuarantineNeverDisplacesRealData) {
    const SweepJournalKey key{kBaseSeed, 0x5eed, 2};
    const fs::path path = journal_path("poison_vs_data");
    SweepJournal journal(path, key);
    journal.record(0, marker_census(30));
    journal.quarantine(0, 5, "a very late expiry");
    EXPECT_TRUE(journal.quarantined().empty());
    ASSERT_NE(journal.find(0), nullptr);
    EXPECT_EQ(journal.find(0)->load_runs, 30u);
    // And the arguments are validated like record()'s.
    EXPECT_THROW(journal.quarantine(9, 1, "out of range"), core::InvalidArgument);
    EXPECT_THROW(journal.quarantine(1, 1, ""), core::InvalidArgument);
    EXPECT_THROW(journal.quarantine(1, 1, "two\nlines"), core::InvalidArgument);
}

TEST(PoisonRecords, TamperedPoisonRecordIsRejectedOnResume) {
    const SweepJournalKey key{kBaseSeed, 0x5eed, 3};
    const fs::path path = journal_path("poison_tampered");
    {
        SweepJournal journal(path, key);
        journal.quarantine(0, 3, "lease-expired");
        journal.quarantine(1, 3, "lease-expired");  // keeps record 0 off the tail
    }
    std::string text = slurp(path);
    const std::size_t pos = text.find("poison 0 3");
    ASSERT_NE(pos, std::string::npos);
    text[pos + std::strlen("poison 0 ")] = '7';  // bend attempts; checksum now wrong
    spit(path, text);
    EXPECT_THROW(SweepJournal(path, key, /*resume=*/true), core::CorruptData);
}

}  // namespace
}  // namespace zerodeg::experiment
