#include "faults/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace zerodeg::faults {
namespace {

using core::RngStream;
using core::RunningStats;

TEST(ExponentialDist, Moments) {
    const Exponential d(0.25);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.hazard(0.0), 0.25);
    EXPECT_DOUBLE_EQ(d.hazard(100.0), 0.25);  // memoryless
    RngStream rng(1, "e");
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(d.sample(rng));
    EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(ExponentialDist, Cdf) {
    const Exponential d(1.0);
    EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
    EXPECT_NEAR(d.cdf(1.0), 1.0 - std::exp(-1.0), 1e-12);
    EXPECT_THROW(Exponential(0.0), core::InvalidArgument);
}

TEST(WeibullDist, ShapeControlsHazardDirection) {
    const Weibull infant(0.5, 100.0);
    EXPECT_GT(infant.hazard(1.0), infant.hazard(50.0));  // decreasing: infant mortality
    const Weibull wearout(3.0, 100.0);
    EXPECT_LT(wearout.hazard(1.0), wearout.hazard(50.0));  // increasing: wear-out
    const Weibull constant(1.0, 100.0);
    EXPECT_NEAR(constant.hazard(1.0), constant.hazard(50.0), 1e-12);
}

TEST(WeibullDist, MeanAndSampling) {
    const Weibull d(2.0, 100.0);
    EXPECT_NEAR(d.mean(), 100.0 * std::tgamma(1.5), 1e-9);
    RngStream rng(2, "w");
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(d.sample(rng));
    EXPECT_NEAR(s.mean(), d.mean(), 1.5);
}

TEST(WeibullDist, CdfMonotone) {
    const Weibull d(1.5, 50.0);
    double prev = -1.0;
    for (double t = 0.0; t <= 300.0; t += 10.0) {
        const double c = d.cdf(t);
        EXPECT_GE(c, prev);
        EXPECT_LE(c, 1.0);
        prev = c;
    }
    EXPECT_THROW(Weibull(0.0, 1.0), core::InvalidArgument);
    EXPECT_THROW(Weibull(1.0, 0.0), core::InvalidArgument);
}

TEST(LogNormalDist, MedianAndSampling) {
    const LogNormal d(std::log(200.0), 0.5);
    EXPECT_NEAR(d.median(), 200.0, 1e-9);
    RngStream rng(3, "l");
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i) xs.push_back(d.sample(rng));
    EXPECT_NEAR(core::percentile(xs, 50.0), 200.0, 8.0);
    EXPECT_NEAR(d.cdf(200.0), 0.5, 1e-9);
    EXPECT_THROW(LogNormal(0.0, 0.0), core::InvalidArgument);
}

TEST(LogNormalDist, CdfBounds) {
    const LogNormal d(0.0, 1.0);
    EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(-5.0), 0.0);
    EXPECT_GT(d.cdf(100.0), 0.99);
}

}  // namespace
}  // namespace zerodeg::faults
