#include "faults/fault_log.hpp"

#include <gtest/gtest.h>

namespace zerodeg::faults {
namespace {

using core::Duration;
using core::TimePoint;

FaultRecord rec(std::int64_t t, int host, FaultComponent c,
                FaultSeverity s = FaultSeverity::kTransient, bool tent = true) {
    FaultRecord r;
    r.time = TimePoint{t};
    r.host_id = host;
    r.source = "host-" + std::to_string(host);
    r.component = c;
    r.severity = s;
    r.in_tent = tent;
    return r;
}

TEST(FaultLogTest, CountsByComponentAndSeverity) {
    FaultLog log;
    log.record(rec(0, 15, FaultComponent::kSystem));
    log.record(rec(10, 15, FaultComponent::kSystem, FaultSeverity::kPermanent));
    log.record(rec(20, 1, FaultComponent::kSensorChip));
    log.record(rec(30, 0, FaultComponent::kSwitch, FaultSeverity::kPermanent));
    EXPECT_EQ(log.count(), 4u);
    EXPECT_EQ(log.count_component(FaultComponent::kSystem), 2u);
    EXPECT_EQ(log.count_component(FaultComponent::kSwitch), 1u);
    EXPECT_EQ(log.count_severity(FaultSeverity::kTransient), 2u);
    EXPECT_EQ(log.count_severity(FaultSeverity::kPermanent), 2u);
}

TEST(FaultLogTest, PerHostView) {
    FaultLog log;
    log.record(rec(0, 15, FaultComponent::kSystem));
    log.record(rec(10, 15, FaultComponent::kSystem));
    log.record(rec(20, 1, FaultComponent::kSystem));
    EXPECT_EQ(log.for_host(15).size(), 2u);
    EXPECT_EQ(log.for_host(1).size(), 1u);
    EXPECT_TRUE(log.for_host(99).empty());
}

TEST(FaultLogTest, TentVsBasement) {
    FaultLog log;
    log.record(rec(0, 15, FaultComponent::kSystem, FaultSeverity::kTransient, true));
    log.record(rec(10, 16, FaultComponent::kSystem, FaultSeverity::kTransient, false));
    EXPECT_EQ(log.count_in_tent(true), 1u);
    EXPECT_EQ(log.count_in_tent(false), 1u);
}

TEST(FaultLogTest, HostsAffected) {
    FaultLog log;
    log.record(rec(0, 15, FaultComponent::kSystem));
    log.record(rec(10, 15, FaultComponent::kSystem));
    log.record(rec(20, 3, FaultComponent::kSystem));
    log.record(rec(30, 0, FaultComponent::kSwitch));  // host_id 0 excluded
    EXPECT_EQ(log.hosts_affected(FaultComponent::kSystem), 2u);
    EXPECT_EQ(log.hosts_affected(FaultComponent::kSwitch), 0u);
}

TEST(CommonCause, DetectsSimultaneousCluster) {
    // The paper's hypothesis test: component X failing on many hosts at
    // nearly the same time.
    FaultLog log;
    log.record(rec(0, 1, FaultComponent::kPsu));
    log.record(rec(3600, 2, FaultComponent::kPsu));
    log.record(rec(7200, 3, FaultComponent::kPsu));
    const CommonCauseDetector det(Duration::hours(24), 3);
    const auto clusters = det.analyze(log);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].component, FaultComponent::kPsu);
    EXPECT_EQ(clusters[0].host_ids, (std::vector<int>{1, 2, 3}));
}

TEST(CommonCause, SpreadFaultsDoNotCluster) {
    FaultLog log;
    log.record(rec(0, 1, FaultComponent::kPsu));
    log.record(rec(86400 * 5, 2, FaultComponent::kPsu));
    log.record(rec(86400 * 10, 3, FaultComponent::kPsu));
    const CommonCauseDetector det(Duration::hours(24), 3);
    EXPECT_TRUE(det.analyze(log).empty());
}

TEST(CommonCause, RepeatsOnOneHostDoNotCluster) {
    FaultLog log;
    log.record(rec(0, 15, FaultComponent::kSystem));
    log.record(rec(600, 15, FaultComponent::kSystem));
    log.record(rec(1200, 15, FaultComponent::kSystem));
    const CommonCauseDetector det(Duration::hours(24), 3);
    EXPECT_TRUE(det.analyze(log).empty());  // needs distinct hosts
}

TEST(CommonCause, DifferentComponentsStaySeparate) {
    FaultLog log;
    log.record(rec(0, 1, FaultComponent::kPsu));
    log.record(rec(10, 2, FaultComponent::kFan));
    log.record(rec(20, 3, FaultComponent::kDisk));
    const CommonCauseDetector det(Duration::hours(24), 3);
    EXPECT_TRUE(det.analyze(log).empty());
}

TEST(CommonCause, UnsortedInputHandled) {
    FaultLog log;
    log.record(rec(7200, 3, FaultComponent::kMemory));
    log.record(rec(0, 1, FaultComponent::kMemory));
    log.record(rec(3600, 2, FaultComponent::kMemory));
    const CommonCauseDetector det(Duration::hours(2), 3);
    ASSERT_EQ(det.analyze(log).size(), 1u);
}

TEST(FaultNames, Strings) {
    EXPECT_STREQ(to_string(FaultComponent::kSensorChip), "sensor chip");
    EXPECT_STREQ(to_string(FaultSeverity::kTransient), "transient");
}

}  // namespace
}  // namespace zerodeg::faults
