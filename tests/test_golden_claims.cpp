// Golden-number regression suite: the paper's reproduced claims, pinned at
// the default seeds, so future refactors can't silently drift the
// reproduction.  Each test names the claim as the paper states it.  Bands
// are deliberately loose where the claim is statistical (the simulation
// regenerates the *regime*) and exact where the run is deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "energy/pue.hpp"
#include "experiment/census.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/prototype.hpp"
#include "experiment/runner.hpp"
#include "faults/memory_faults.hpp"

namespace zerodeg {
namespace {

// --- Section 5: "a rather efficient 1.74" --------------------------------

TEST(GoldenClaims, PueOfTheNewClusterIs174) {
    const energy::PueBreakdown p = energy::helsinki_cluster_pue();
    EXPECT_NEAR(p.it_load.kilowatts(), 75.0, 1e-9);
    EXPECT_NEAR(p.cooling.kilowatts(), 6.9 + 44.7 + 3.8, 1e-9);
    EXPECT_NEAR(p.pue, 1.74, 0.005);
    // "unfortunately, such is not the case": the legacy-CRAC correction only
    // makes it worse.
    EXPECT_GT(energy::helsinki_cluster_pue_with_legacy_cracs().pue, p.pue);
}

// --- Section 3.1: the prototype weekend ----------------------------------

TEST(GoldenClaims, PrototypeWeekendReproducesThePaperRegime) {
    const experiment::PrototypeResult r = experiment::run_prototype();
    // Paper: minimum -10.2 degC, mean -9.2 degC, CPU as cold as -4 degC,
    // and the machine survived with clean S.M.A.R.T. data.  At the default
    // seed this reproduction lands on -12.4 / -9.2 / -4.8 (the minimum runs
    // colder because the synthetic weekend keeps a realistic diurnal spread;
    // see "Known deviations" in EXPERIMENTS.md).
    EXPECT_TRUE(r.survived);
    EXPECT_TRUE(r.smart_ok);
    EXPECT_NEAR(r.outside_mean.value(), -9.2, 0.5);   // the paper's mean, matched
    EXPECT_NEAR(r.outside_min.value(), -12.4, 1.0);   // pinned reproduction value
    EXPECT_NEAR(r.cpu_min_reported.value(), -4.8, 2.0);
    EXPECT_LT(r.cpu_min_reported.value(), 0.0);       // "as low as -4 degC": sub-zero CPU
}

// --- Section 4 / 4.2: the fault census at the default seed ---------------

/// One full default season (the paper's Feb 19 - Mar 27 window, seed
/// 20100219), shared by the census golden tests below.  ~1.5 s once.
const experiment::FaultCensus& default_season_census() {
    static const experiment::FaultCensus census =
        experiment::run_season_census(experiment::ExperimentConfig{});
    return census;
}

TEST(GoldenClaims, HostFailureRateIsThePapers56Percent) {
    const experiment::FaultCensus& c = default_season_census();
    // Paper: one of eighteen installed hosts failed -- 5.6%, vs Intel's
    // 4.46% comparator -- and the failure was in the tent group.
    EXPECT_EQ(c.tent_hosts, 9u);
    EXPECT_EQ(c.basement_hosts, 9u);
    EXPECT_EQ(c.tent_hosts_failed, 1u);
    EXPECT_EQ(c.basement_hosts_failed, 0u);
    EXPECT_NEAR(c.fleet_failure_rate(), 1.0 / 18.0, 1e-12);
    // Same band as Intel's economizer PoC, the paper's headline comparison.
    EXPECT_LT(c.fleet_failure_rate(), 2.0 * experiment::FaultCensus::kIntelFailureRate);
}

TEST(GoldenClaims, DefaultSeasonCensusGoldenNumbers) {
    const experiment::FaultCensus& c = default_season_census();
    // Exact pins at the default seed: any behavioural drift in weather,
    // thermals, hazards, scheduling or RNG stream derivation moves at least
    // one of these.  Update them ONLY for an intentional model change, and
    // say so in EXPERIMENTS.md.
    EXPECT_EQ(c.system_failures, 1u);
    EXPECT_EQ(c.load_runs, 70183u);
    EXPECT_EQ(c.wrong_hashes, 13u);
    EXPECT_EQ(c.sensor_incidents, 0u);
    EXPECT_EQ(c.switch_failures, 3u);
}

TEST(GoldenClaims, WrongHashRatioOfTheSeasonNear570Million) {
    const experiment::FaultCensus& c = default_season_census();
    // Paper: "around one in 570 million" page operations.  The default
    // season realizes one in ~657 million -- same order, well inside the
    // Poisson spread of 13 events.
    ASSERT_GT(c.wrong_hashes, 0u);
    const double ops_per_corruption = 1.0 / c.page_fault_ratio();
    EXPECT_GT(ops_per_corruption, 570e6 / 2.0);
    EXPECT_LT(ops_per_corruption, 570e6 * 2.0);
}

// --- Traffic workload: the default request-serving season -----------------

TEST(GoldenClaims, DefaultTrafficSeasonGoldenNumbers) {
    experiment::ExperimentConfig cfg;
    cfg.workload = experiment::WorkloadKind::kTraffic;
    const experiment::FaultCensus c = experiment::run_season_census(cfg);
    // Exact pins at the default seed: the whole coupling chain is upstream
    // of these numbers — arrival thinning, PS service, JSQ dispatch, host
    // install/crash schedule, utilization -> heat -> hazard.  Any drift in
    // any layer moves at least one.  Update ONLY for an intentional model
    // change, and say so in EXPERIMENTS.md.
    EXPECT_EQ(c.requests_completed, 787661u);
    EXPECT_EQ(c.requests_dropped, 0u);
    EXPECT_EQ(c.deadline_misses, 18625u);
    EXPECT_EQ(c.p99_sojourn_us, 888624838u);
    // The two default flash crowds transiently saturate the fleet; misses
    // stay a small minority of the season's traffic.
    EXPECT_NEAR(c.deadline_miss_fraction(), 0.024, 0.002);
    // Faults under the traffic workload at the default seed: same fleet
    // failure story as the archive season (one tent host).
    EXPECT_EQ(c.system_failures, 1u);
    EXPECT_EQ(c.switch_failures, 3u);
    // The archive pipeline really was off: no batch runs, no hash checks.
    EXPECT_EQ(c.load_runs, 0u);
    EXPECT_EQ(c.wrong_hashes, 0u);
}

// --- Section 4.2.2: "around one in 570 million" --------------------------

TEST(GoldenClaims, WrongHashRatioNearOneIn570Million) {
    const faults::MemoryFaultParams params;  // defaults ARE the paper's rate
    EXPECT_DOUBLE_EQ(params.flip_probability_per_page_op, 1.0 / 570e6);

    faults::MemoryFaultModel model(params, core::RngStream(20100219, "golden-hashes"));
    // Simulate ~20x the paper's denominator and require the realized ratio
    // inside a 4-sigma Poisson band around 1/570M.
    constexpr std::uint64_t kPageOpsPerSlice = 570'000'000;
    constexpr int kSlices = 20;
    std::uint64_t corrupting = 0;
    for (int i = 0; i < kSlices; ++i) {
        corrupting += model.run(kPageOpsPerSlice, /*ecc=*/false).corrupting_flips;
    }
    EXPECT_GT(corrupting, 0u);
    EXPECT_NEAR(static_cast<double>(corrupting), kSlices, 4.0 * std::sqrt(kSlices));
}

}  // namespace
}  // namespace zerodeg
