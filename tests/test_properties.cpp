// Cross-module property tests: randomized/parameterized sweeps of the
// invariants the whole reproduction stands on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "thermal/rc_network.hpp"
#include "weather/psychrometrics.hpp"
#include "workload/compressor.hpp"
#include "workload/md5.hpp"

namespace zerodeg {
namespace {

using core::Celsius;
using core::RelHumidity;
using core::RngStream;

// --- psychrometrics over the whole operating grid ---------------------------

struct PsychroPoint {
    double t;
    double rh;
};

class PsychroGrid : public ::testing::TestWithParam<PsychroPoint> {};

TEST_P(PsychroGrid, DewPointInvariants) {
    const auto [t, rh] = GetParam();
    const Celsius dp = weather::dew_point(Celsius{t}, RelHumidity{rh});
    // Dew point never exceeds air temperature...
    EXPECT_LE(dp.value(), t + 0.05);
    // ...and re-basing the air to its own dew point yields saturation
    // (>=100% because below 0 degC the saturation branch switches to ice).
    const RelHumidity at_dp = weather::rebase_humidity(Celsius{t}, RelHumidity{rh}, dp);
    EXPECT_GE(at_dp.value(), 99.0);
}

TEST_P(PsychroGrid, RebaseIsMultiplicative) {
    const auto [t, rh] = GetParam();
    // Rebasing a->b then b->c equals rebasing a->c (vapour pressure is the
    // conserved quantity).
    const Celsius b{t + 7.0};
    const Celsius c{t - 4.0};
    const RelHumidity via =
        weather::rebase_humidity(b, weather::rebase_humidity(Celsius{t}, RelHumidity{rh}, b), c);
    const RelHumidity direct = weather::rebase_humidity(Celsius{t}, RelHumidity{rh}, c);
    EXPECT_NEAR(via.value(), direct.value(), 1e-9);
}

TEST_P(PsychroGrid, AbsoluteHumidityPositiveAndBounded) {
    const auto [t, rh] = GetParam();
    const double ah = weather::absolute_humidity(Celsius{t}, RelHumidity{rh}).value();
    EXPECT_GE(ah, 0.0);
    EXPECT_LT(ah, 60.0);  // even saturated 40 degC air holds ~51 g/m^3
}

INSTANTIATE_TEST_SUITE_P(Grid, PsychroGrid,
                         ::testing::Values(PsychroPoint{-22.0, 85.0}, PsychroPoint{-10.0, 95.0},
                                           PsychroPoint{-4.0, 60.0}, PsychroPoint{0.0, 80.0},
                                           PsychroPoint{5.0, 40.0}, PsychroPoint{21.0, 35.0},
                                           PsychroPoint{30.0, 70.0}));

// --- RC networks settle to their analytic equilibrium -----------------------

class RcEquilibrium : public ::testing::TestWithParam<int> {};

TEST_P(RcEquilibrium, SettledNetworkMatchesLocalEquilibrium) {
    RngStream rng(static_cast<std::uint64_t>(GetParam()), "rc");
    thermal::ThermalNetwork net;
    const int nodes = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < nodes; ++i) {
        net.add_node("n" + std::to_string(i),
                     core::JoulesPerKelvin{rng.uniform(500.0, 5000.0)},
                     Celsius{rng.uniform(-20.0, 40.0)},
                     core::WattsPerKelvin{rng.uniform(0.5, 10.0)});
        net.set_power(static_cast<std::size_t>(i), core::Watts{rng.uniform(0.0, 200.0)});
    }
    for (int i = 1; i < nodes; ++i) {
        net.connect(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(i),
                    core::WattsPerKelvin{rng.uniform(0.5, 8.0)});
    }
    const Celsius ambient{rng.uniform(-25.0, 10.0)};
    // Settle far past every time constant.
    net.step(core::Duration::hours(48), ambient);
    // At equilibrium every node equals its local equilibrium given its
    // neighbors (the fixed point of the dynamics).
    for (int i = 0; i < nodes; ++i) {
        EXPECT_NEAR(net.temperature(static_cast<std::size_t>(i)).value(),
                    net.local_equilibrium(static_cast<std::size_t>(i), ambient).value(), 0.05)
            << "node " << i << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcEquilibrium, ::testing::Range(0, 12));

// --- frost round-trips arbitrary bytes, not just source text ----------------

class FrostRandomPayload : public ::testing::TestWithParam<int> {};

TEST_P(FrostRandomPayload, RoundTrip) {
    RngStream rng(static_cast<std::uint64_t>(GetParam()), "payload");
    std::vector<std::uint8_t> data;
    const int segments = static_cast<int>(rng.uniform_int(1, 20));
    for (int s = 0; s < segments; ++s) {
        const int kind = static_cast<int>(rng.uniform_int(0, 2));
        const auto len = static_cast<std::size_t>(rng.uniform_int(1, 20000));
        if (kind == 0) {
            // run of one byte
            data.insert(data.end(), len, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
        } else if (kind == 1) {
            // random noise
            for (std::size_t i = 0; i < len; ++i) {
                data.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
            }
        } else {
            // textish: narrow alphabet
            for (std::size_t i = 0; i < len; ++i) {
                data.push_back(static_cast<std::uint8_t>('a' + rng.uniform_int(0, 15)));
            }
        }
    }
    workload::CompressorConfig cfg;
    cfg.block_size = static_cast<std::size_t>(rng.uniform_int(1024, 32768));
    const auto packed = workload::frost_compress(data, cfg);
    EXPECT_EQ(workload::frost_decompress(packed), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrostRandomPayload, ::testing::Range(100, 112));

// --- md5 avalanche: any single-bit flip anywhere changes the digest ---------

class Md5Avalanche : public ::testing::TestWithParam<int> {};

TEST_P(Md5Avalanche, FlipAlwaysDetected) {
    RngStream rng(static_cast<std::uint64_t>(GetParam()), "md5");
    std::vector<std::uint8_t> data(static_cast<std::size_t>(rng.uniform_int(1, 5000)));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto reference = workload::md5(data);
    for (int trial = 0; trial < 20; ++trial) {
        auto copy = data;
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(copy.size()) - 1));
        copy[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        EXPECT_NE(workload::md5(copy), reference);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Md5Avalanche, ::testing::Range(0, 6));

}  // namespace
}  // namespace zerodeg
