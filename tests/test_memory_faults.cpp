#include "faults/memory_faults.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace zerodeg::faults {
namespace {

using core::RngStream;

TEST(MemoryFaults, PaperRateExpectation) {
    // ~3.2e9 page ops at 1-in-570M gives ~5.6 expected corruptions — the
    // paper's five wrong hashes (they estimate six events).
    const MemoryFaultModel m(MemoryFaultParams{}, RngStream(1, "m"));
    EXPECT_NEAR(m.expected_corruptions(3'200'000'000ULL, false), 5.6, 0.1);
}

TEST(MemoryFaults, EccSuppressesAlmostEverything) {
    const MemoryFaultParams p;
    const MemoryFaultModel m(p, RngStream(1, "m"));
    const double plain = m.expected_corruptions(1'000'000'000ULL, false);
    const double ecc = m.expected_corruptions(1'000'000'000ULL, true);
    EXPECT_NEAR(ecc / plain, p.multi_bit_fraction, 1e-12);
}

TEST(MemoryFaults, EmpiricalRateMatchesConfigured) {
    MemoryFaultModel m(MemoryFaultParams{}, RngStream(7, "m"));
    constexpr std::uint64_t kOpsPerRun = 116'000;  // the per-run cost
    constexpr int kRuns = 300000;                  // ~10x the paper's run count
    std::uint64_t corruptions = 0;
    for (int i = 0; i < kRuns; ++i) corruptions += m.run(kOpsPerRun, false).corrupting_flips;
    const double expected = kOpsPerRun * static_cast<double>(kRuns) / 570e6;
    EXPECT_NEAR(static_cast<double>(corruptions), expected, 5.0 * std::sqrt(expected));
}

TEST(MemoryFaults, EccCorrectsSingleBitEvents) {
    MemoryFaultParams p;
    p.flip_probability_per_page_op = 1e-3;  // frequent, for the test
    p.multi_bit_fraction = 0.0;             // all single-bit
    MemoryFaultModel m(p, RngStream(3, "m"));
    const MemoryFaultOutcome out = m.run(1'000'000, true);
    EXPECT_GT(out.raw_flips, 0u);
    EXPECT_EQ(out.corrupting_flips, 0u);
    EXPECT_EQ(out.corrected, out.raw_flips);
}

TEST(MemoryFaults, NonEccPassesEverythingThrough) {
    MemoryFaultParams p;
    p.flip_probability_per_page_op = 1e-3;
    MemoryFaultModel m(p, RngStream(3, "m"));
    const MemoryFaultOutcome out = m.run(1'000'000, false);
    EXPECT_EQ(out.corrupting_flips, out.raw_flips);
    EXPECT_EQ(out.corrected, 0u);
}

TEST(MemoryFaults, MultiBitBeatsEcc) {
    MemoryFaultParams p;
    p.flip_probability_per_page_op = 1e-3;
    p.multi_bit_fraction = 1.0;  // every event multi-bit
    MemoryFaultModel m(p, RngStream(3, "m"));
    const MemoryFaultOutcome out = m.run(1'000'000, true);
    EXPECT_EQ(out.corrupting_flips, out.raw_flips);
}

TEST(MemoryFaults, ZeroOpsZeroFlips) {
    MemoryFaultModel m(MemoryFaultParams{}, RngStream(1, "m"));
    const MemoryFaultOutcome out = m.run(0, false);
    EXPECT_EQ(out.raw_flips, 0u);
}

TEST(MemoryFaults, Validation) {
    MemoryFaultParams p;
    p.flip_probability_per_page_op = -0.1;
    EXPECT_THROW(MemoryFaultModel(p, RngStream(1, "m")), core::InvalidArgument);
    p.flip_probability_per_page_op = 0.5;
    p.multi_bit_fraction = 1.5;
    EXPECT_THROW(MemoryFaultModel(p, RngStream(1, "m")), core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::faults
