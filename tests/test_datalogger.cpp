#include "monitoring/datalogger.hpp"

#include <gtest/gtest.h>

#include "monitoring/outlier_filter.hpp"

namespace zerodeg::monitoring {
namespace {

using core::Celsius;
using core::Duration;
using core::RngStream;
using core::Simulator;
using core::TimePoint;
using core::Watts;

/// An enclosure whose air we control directly.
class FakeEnclosure final : public thermal::Enclosure {
public:
    void set_equipment_power(Watts) override {}
    void step(Duration, const weather::WeatherSample&) override {}
    [[nodiscard]] thermal::EnclosureAir air() const override {
        thermal::EnclosureAir a;
        a.temperature = temp;
        a.humidity = rh;
        a.dew_point = Celsius{temp.value() - 3.0};
        return a;
    }
    [[nodiscard]] const std::string& name() const override { return name_; }

    Celsius temp{-8.0};
    core::RelHumidity rh{75.0};

private:
    std::string name_ = "fake";
};

TEST(Lascar, SamplesAtCadence) {
    Simulator sim(TimePoint::from_date(2010, 3, 1));
    FakeEnclosure enc;
    LascarLogger logger(sim, enc, sim.now(), LascarConfig{}, RngStream(1, "l"));
    sim.run_until(sim.now() + Duration::hours(2));
    // 10-minute cadence, inclusive of t=0: 13 samples in 2h.
    EXPECT_EQ(logger.temperature_series().size(), 13u);
    EXPECT_EQ(logger.humidity_series().size(), 13u);
}

TEST(Lascar, NoiseWithinDatasheetSpec) {
    Simulator sim(TimePoint::from_date(2010, 3, 1));
    FakeEnclosure enc;
    LascarLogger logger(sim, enc, sim.now(), LascarConfig{}, RngStream(2, "l"));
    sim.run_until(sim.now() + Duration::days(7));
    const auto t = logger.temperature_series().stats();
    // Truth is -8.0; +/-2 degC is the datasheet maximum error.
    EXPECT_NEAR(t.mean, -8.0, 0.1);
    EXPECT_GT(t.min, -10.0);
    EXPECT_LT(t.max, -6.0);
    const auto h = logger.humidity_series().stats();
    EXPECT_NEAR(h.mean, 75.0, 0.5);
    EXPECT_GT(h.stddev, 0.1);  // there IS noise
}

TEST(Lascar, DelayedArrival) {
    // "Because the Lascar data logger arrived late, tent-internal
    // temperature and humidity data from the early parts of the experiment
    // are missing."
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    FakeEnclosure enc;
    const TimePoint late = TimePoint::from_date(2010, 3, 1);
    LascarLogger logger(sim, enc, late, LascarConfig{}, RngStream(3, "l"));
    sim.run_until(TimePoint::from_date(2010, 3, 2));
    EXPECT_EQ(logger.first_sample_time(), late);
    EXPECT_GE(logger.temperature_series().front().time, late);
}

TEST(Lascar, ReadoutTripRecordsIndoorConditions) {
    Simulator sim(TimePoint::from_date(2010, 3, 1));
    FakeEnclosure enc;
    LascarConfig cfg;
    LascarLogger logger(sim, enc, sim.now(), cfg, RngStream(4, "l"));
    const TimePoint trip_start = sim.now() + Duration::hours(5);
    logger.schedule_readout({trip_start, Duration::minutes(25)});
    sim.run_until(sim.now() + Duration::hours(10));

    // Samples during the trip read ~21.5 degC instead of -8.
    bool saw_indoor = false;
    for (const core::Sample& s : logger.temperature_series()) {
        if (s.time >= trip_start && s.time <= trip_start + Duration::minutes(25)) {
            EXPECT_NEAR(s.value, cfg.indoor_temp.value(), 2.0);
            saw_indoor = true;
        }
    }
    EXPECT_TRUE(saw_indoor);
}

TEST(OutlierFilterTest, RemovesKnownReadouts) {
    Simulator sim(TimePoint::from_date(2010, 3, 1));
    FakeEnclosure enc;
    LascarLogger logger(sim, enc, sim.now(), LascarConfig{}, RngStream(5, "l"));
    logger.schedule_readout({sim.now() + Duration::hours(3)});
    sim.run_until(sim.now() + Duration::hours(6));

    core::TimeSeries series = logger.temperature_series();
    const std::size_t before = series.size();
    const std::size_t removed = remove_readout_outliers(series, logger.readouts());
    EXPECT_GT(removed, 0u);
    EXPECT_EQ(series.size(), before - removed);
    // Everything left is tent-like.
    for (const core::Sample& s : series) EXPECT_LT(s.value, 0.0);
}

TEST(OutlierFilterTest, JumpFilterCatchesIndoorTrip) {
    // Build the classic trip signature by hand: stable -8, jump to +21 for
    // two samples, back to -8.
    core::TimeSeries series("t");
    std::int64_t t = 0;
    const auto add = [&](double v) {
        series.append(TimePoint{t}, v);
        t += 600;
    };
    for (int i = 0; i < 10; ++i) add(-8.0 + 0.1 * i);
    add(21.5);
    add(21.3);
    for (int i = 0; i < 10; ++i) add(-7.5 - 0.05 * i);

    const std::size_t removed = remove_jump_outliers(series);
    EXPECT_EQ(removed, 2u);
    for (const core::Sample& s : series) EXPECT_LT(s.value, 0.0);
}

TEST(OutlierFilterTest, JumpFilterKeepsRealWeatherFronts) {
    // A sharp but *sustained* drop (the Feb 21 cold snap) must survive.
    core::TimeSeries series("t");
    std::int64_t t = 0;
    const auto add = [&](double v) {
        series.append(TimePoint{t}, v);
        t += 600;
    };
    for (int i = 0; i < 5; ++i) add(-5.0);
    for (int i = 0; i < 60; ++i) add(-19.0);  // stays cold for 10 hours
    const std::size_t removed = remove_jump_outliers(series);
    EXPECT_EQ(removed, 0u);
    EXPECT_EQ(series.size(), 65u);
}

TEST(OutlierFilterTest, ShortSeriesUntouched) {
    core::TimeSeries series("t");
    series.append(TimePoint{0}, 1.0);
    EXPECT_EQ(remove_jump_outliers(series), 0u);
}

}  // namespace
}  // namespace zerodeg::monitoring
