// End-to-end smoke test of the `zerodeg` binary's argument validation and
// exit-code contract: 0 = success, 1 = runtime failure, 2 = usage error.
// Runs the real executable (path baked in as ZERODEG_CLI_PATH) through the
// shell, so what is asserted here is exactly what a user at a prompt sees.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "cli_test_util.hpp"

namespace {

namespace fs = std::filesystem;

/// Run the CLI with `args`, discarding output; returns the exit code.
int run_cli(const std::string& args) {
    return zerodeg::test::run_command(std::string(ZERODEG_CLI_PATH) + " " + args).exit_code;
}

fs::path temp_file(const std::string& name) {
    fs::path p = fs::path(::testing::TempDir()) / name;
    fs::remove(p);
    return p;
}

TEST(CliSmoke, NoArgumentsIsAUsageError) { EXPECT_EQ(run_cli(""), 2); }

TEST(CliSmoke, UnknownSubcommandIsAUsageError) { EXPECT_EQ(run_cli("sing"), 2); }

TEST(CliSmoke, UnknownFlagIsAUsageError) {
    EXPECT_EQ(run_cli("prototype --walrus 3"), 2);
    // A flag another subcommand owns is still unknown here.
    EXPECT_EQ(run_cli("weather --seeds 3"), 2);
}

TEST(CliSmoke, MalformedNumbersAreUsageErrors) {
    EXPECT_EQ(run_cli("census --jobs -3"), 2);
    EXPECT_EQ(run_cli("census --jobs banana"), 2);
    EXPECT_EQ(run_cli("census --seeds 0"), 2);
    EXPECT_EQ(run_cli("weather --step-min 0"), 2);
    EXPECT_EQ(run_cli("season --seed"), 2);  // missing value
}

TEST(CliSmoke, ResumeWithoutCheckpointIsAUsageError) {
    EXPECT_EQ(run_cli("census --resume"), 2);
}

TEST(CliSmoke, UnreadableTraceIsARuntimeError) {
    EXPECT_EQ(run_cli("season --trace /nonexistent/weather.csv"), 1);
}

TEST(CliSmoke, CorruptTraceIsARuntimeError) {
    const fs::path trace = temp_file("corrupt_trace.csv");
    std::ofstream(trace) << "time,temp_degC,rh_pct,wind_mps,ghi_wm2,cloud,precip_mm_h\n"
                            "2010-02-12 00:00:00,not-a-number,80,3,0,0.5,0\n";
    EXPECT_EQ(run_cli("season --trace " + trace.string()), 1);
}

TEST(CliSmoke, WeatherSucceeds) { EXPECT_EQ(run_cli("weather --to 2010-02-13"), 0); }

TEST(CliSmoke, CorruptCheckpointIsARuntimeError) {
    const fs::path journal = temp_file("corrupt.journal");
    std::ofstream(journal) << "not a journal at all\n";
    EXPECT_EQ(run_cli("census --seeds 2 --checkpoint " + journal.string() + " --resume"), 1);
}

}  // namespace
