// End-to-end smoke test of the `zerodeg` binary's argument validation and
// exit-code contract: 0 = success, 1 = runtime failure, 2 = usage error.
// Runs the real executable (path baked in as ZERODEG_CLI_PATH) through the
// shell, so what is asserted here is exactly what a user at a prompt sees.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "cli_test_util.hpp"

namespace {

namespace fs = std::filesystem;

/// Run the CLI with `args`, discarding output; returns the exit code.
int run_cli(const std::string& args) {
    return zerodeg::test::run_command(std::string(ZERODEG_CLI_PATH) + " " + args).exit_code;
}

/// Run the CLI with `args`, keeping combined stdout+stderr.
zerodeg::test::CommandResult run_cli_capture(const std::string& args) {
    return zerodeg::test::run_command(std::string(ZERODEG_CLI_PATH) + " " + args);
}

std::string slurp(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void spit(const fs::path& p, const std::string& text) {
    std::ofstream out(p, std::ios::trunc);
    out << text;
}

fs::path temp_file(const std::string& name) {
    fs::path p = fs::path(::testing::TempDir()) / name;
    fs::remove(p);
    return p;
}

TEST(CliSmoke, NoArgumentsIsAUsageError) { EXPECT_EQ(run_cli(""), 2); }

TEST(CliSmoke, UnknownSubcommandIsAUsageError) { EXPECT_EQ(run_cli("sing"), 2); }

TEST(CliSmoke, UnknownFlagIsAUsageError) {
    EXPECT_EQ(run_cli("prototype --walrus 3"), 2);
    // A flag another subcommand owns is still unknown here.
    EXPECT_EQ(run_cli("weather --seeds 3"), 2);
}

TEST(CliSmoke, MalformedNumbersAreUsageErrors) {
    EXPECT_EQ(run_cli("census --jobs -3"), 2);
    EXPECT_EQ(run_cli("census --jobs banana"), 2);
    EXPECT_EQ(run_cli("census --seeds 0"), 2);
    EXPECT_EQ(run_cli("weather --step-min 0"), 2);
    EXPECT_EQ(run_cli("season --seed"), 2);  // missing value
}

TEST(CliSmoke, ResumeWithoutCheckpointIsAUsageError) {
    EXPECT_EQ(run_cli("census --resume"), 2);
}

TEST(CliSmoke, UnreadableTraceIsARuntimeError) {
    EXPECT_EQ(run_cli("season --trace /nonexistent/weather.csv"), 1);
}

TEST(CliSmoke, CorruptTraceIsARuntimeError) {
    const fs::path trace = temp_file("corrupt_trace.csv");
    std::ofstream(trace) << "time,temp_degC,rh_pct,wind_mps,ghi_wm2,cloud,precip_mm_h\n"
                            "2010-02-12 00:00:00,not-a-number,80,3,0,0.5,0\n";
    EXPECT_EQ(run_cli("season --trace " + trace.string()), 1);
}

TEST(CliSmoke, WeatherSucceeds) { EXPECT_EQ(run_cli("weather --to 2010-02-13"), 0); }

TEST(CliSmoke, CorruptCheckpointIsARuntimeError) {
    const fs::path journal = temp_file("corrupt.journal");
    std::ofstream(journal) << "not a journal at all\n";
    EXPECT_EQ(run_cli("census --seeds 2 --checkpoint " + journal.string() + " --resume"), 1);
}

TEST(CliSmoke, HelpExitsZeroAndDocumentsTheResumeContract) {
    const auto r = run_cli_capture("help");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("usage: zerodeg"), std::string::npos);
    // The corrupt-checkpoint exit-code contract, spelled out for operators.
    EXPECT_NE(r.output.find("torn tail record"), std::string::npos);
    EXPECT_NE(r.output.find("exit 0"), std::string::npos);
    EXPECT_NE(r.output.find("exit 1"), std::string::npos);
    EXPECT_NE(r.output.find("stale fingerprint"), std::string::npos);
    EXPECT_EQ(run_cli("--help"), 0);
    EXPECT_EQ(run_cli("-h"), 0);
}

TEST(CliSmoke, TortureAndInjectFaultsFlagValidation) {
    EXPECT_EQ(run_cli("census --torture"), 2);  // needs --checkpoint
    EXPECT_EQ(run_cli("census --torture --checkpoint j --resume"), 2);
    EXPECT_EQ(run_cli("census --torture --checkpoint j --inject-faults 1"), 2);
    EXPECT_EQ(run_cli("season --torture --checkpoint j"), 2);  // census-only flag
    EXPECT_EQ(run_cli("census --inject-faults banana --checkpoint j"), 2);
    EXPECT_EQ(run_cli("weather --inject-faults 1"), 2);  // no durable writers there
}

/// Exit 0: a torn tail record (crash mid-append) is forgiven — warned about,
/// truncated away, and its cell re-simulated.
TEST(CliSmoke, ResumeFromTornTailCheckpointSucceedsWithWarning) {
    const fs::path journal = temp_file("torn_tail.journal");
    const std::string census = "census --seeds 2 --checkpoint " + journal.string();
    ASSERT_EQ(run_cli(census), 0);

    const std::string text = slurp(journal);
    ASSERT_GT(text.size(), 10u);
    spit(journal, text.substr(0, text.size() - 6));  // chop the record's tail

    const auto r = run_cli_capture(census + " --resume");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("dropping torn tail record"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("re-simulated"), std::string::npos) << r.output;
}

/// Exit 1: damage before the last record cannot be a torn append, so it is
/// never forgiven — the journal is rejected with a diagnostic.
TEST(CliSmoke, ResumeFromMidFileCorruptionFails) {
    const fs::path journal = temp_file("midfile.journal");
    const std::string census = "census --seeds 2 --checkpoint " + journal.string();
    ASSERT_EQ(run_cli(census), 0);

    std::string text = slurp(journal);
    const std::size_t first_cell = text.find("\ncell ");
    ASSERT_NE(first_cell, std::string::npos);
    const std::size_t line_end = text.find('\n', first_cell + 1);
    ASSERT_NE(line_end, std::string::npos);
    // Flip the first record's checksum word (last 16 hex chars of its line).
    text.replace(line_end - 16, 16, "00000000deadbeef");
    spit(journal, text);

    const auto r = run_cli_capture(census + " --resume");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("checksum"), std::string::npos) << r.output;
}

TEST(CliSmoke, SeasonInjectFaultsReportsTheAbsorbedFaults) {
    const fs::path journal = temp_file("inject.journal");
    const auto r = run_cli_capture("season --end 2010-02-20 --inject-faults 7 --checkpoint " +
                                   journal.string());
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("fault injection:"), std::string::npos) << r.output;
}

}  // namespace
