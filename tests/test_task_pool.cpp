// Unit + stress tests for core::TaskPool and the fork/join helpers in
// core/parallel.hpp — the substrate of the parallel Monte-Carlo engine.
// Labelled `parallel` in CTest so the suite can be re-run under
// -DZERODEG_SANITIZE=thread as the data-race gate.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/task_pool.hpp"

namespace zerodeg::core {
namespace {

TEST(TaskPool, RunsManyMoreTasksThanWorkers) {
    TaskPool pool(/*workers=*/3, /*queue_capacity=*/4);
    std::atomic<int> counter{0};
    constexpr int kTasks = 2000;  // >> workers and >> queue capacity
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), kTasks);
    EXPECT_EQ(pool.tasks_executed(), static_cast<std::size_t>(kTasks));
}

TEST(TaskPool, DefaultsClampToHardware) {
    TaskPool pool;
    EXPECT_EQ(pool.worker_count(), TaskPool::hardware_workers());
    EXPECT_GE(pool.worker_count(), 1u);
    EXPECT_GE(pool.queue_capacity(), pool.worker_count());
}

TEST(TaskPool, OneWorkerExecutesInSubmissionOrder) {
    TaskPool pool(/*workers=*/1);
    std::vector<int> order;  // single consumer thread; read after wait_idle()
    for (int i = 0; i < 50; ++i) {
        pool.submit([&order, i] { order.push_back(i); });
    }
    pool.wait_idle();
    std::vector<int> expected(50);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(TaskPool, ZeroTasksIsANoOp) {
    TaskPool pool(2);
    pool.wait_idle();  // returns immediately
    EXPECT_EQ(pool.tasks_executed(), 0u);

    std::atomic<int> calls{0};
    parallel_for(pool, 5, 5, [&calls](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    const auto results = parallel_map(pool, 0, [](std::size_t i) { return i; });
    EXPECT_TRUE(results.empty());
}

TEST(TaskPool, DestructionDrainsPendingTasks) {
    std::atomic<int> counter{0};
    constexpr int kTasks = 64;
    {
        TaskPool pool(/*workers=*/2, /*queue_capacity=*/kTasks);
        for (int i = 0; i < kTasks; ++i) {
            pool.submit([&counter] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                counter.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destructor runs with most tasks still queued.
    }
    EXPECT_EQ(counter.load(), kTasks);
}

TEST(TaskPool, CancelPendingDropsOnlyUnstartedTasks) {
    TaskPool pool(/*workers=*/1, /*queue_capacity=*/16);
    // Gate the single worker so everything behind the gate stays queued.
    std::mutex m;
    std::condition_variable cv;
    bool gate_open = false;
    bool gate_running = false;
    pool.submit([&] {
        std::unique_lock lock(m);
        gate_running = true;
        cv.notify_all();
        cv.wait(lock, [&] { return gate_open; });
    });
    {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return gate_running; });
    }
    std::atomic<int> ran{0};
    for (int i = 0; i < 5; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_EQ(pool.cancel_pending(), 5u);
    {
        std::unique_lock lock(m);
        gate_open = true;
        cv.notify_all();
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 0);
}

TEST(TaskPool, TrySubmitReportsFullQueue) {
    TaskPool pool(/*workers=*/1, /*queue_capacity=*/2);
    std::mutex m;
    std::condition_variable cv;
    bool gate_open = false;
    bool gate_running = false;
    pool.submit([&] {
        std::unique_lock lock(m);
        gate_running = true;
        cv.notify_all();
        cv.wait(lock, [&] { return gate_open; });
    });
    {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return gate_running; });
    }
    // Worker is busy on the gate; fill the whole queue.
    EXPECT_TRUE(pool.try_submit([] {}));
    EXPECT_TRUE(pool.try_submit([] {}));
    EXPECT_FALSE(pool.try_submit([] {}));
    {
        std::unique_lock lock(m);
        gate_open = true;
        cv.notify_all();
    }
    pool.wait_idle();
    EXPECT_EQ(pool.tasks_executed(), 3u);
}

TEST(TaskPool, EmptyTaskIsRejected) {
    TaskPool pool(1);
    EXPECT_THROW(pool.submit(std::function<void()>{}), InvalidArgument);
}

TEST(ParallelFor, ExceptionFromTaskSurfacesToCaller) {
    TaskPool pool(4);
    EXPECT_THROW(parallel_for(pool, 0, 100,
                              [](std::size_t i) {
                                  if (i == 7) throw InvalidArgument("boom at 7");
                              }),
                 InvalidArgument);
    // The pool survives a throwing batch and keeps working.
    std::atomic<int> ok{0};
    parallel_for(pool, 0, 10, [&ok](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ParallelFor, LowestIndexExceptionWinsDeterministically) {
    TaskPool pool(4);
    for (int attempt = 0; attempt < 5; ++attempt) {
        try {
            parallel_for(pool, 0, 64, [](std::size_t i) {
                if (i % 3 == 1) {  // throws at 1, 4, 7, ...
                    throw InvalidArgument("thrown by index " + std::to_string(i));
                }
            });
            FAIL() << "expected an exception";
        } catch (const InvalidArgument& e) {
            EXPECT_STREQ(e.what(), "thrown by index 1");
        }
    }
}

TEST(ParallelMap, ResultsAreOrderedByIndex) {
    TaskPool pool(4, /*queue_capacity=*/8);
    const auto squares =
        parallel_map(pool, 500, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 500u);
    for (std::size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, MatchesSerialMapExactly) {
    TaskPool pool(8);
    const auto fn = [](std::size_t i) { return 0.1 * static_cast<double>(i * 37 % 101); };
    EXPECT_EQ(parallel_map(pool, 300, fn), serial_map(300, fn));
}

TEST(CellRetry, TransientFailuresRecoverWithinBudget) {
    TaskPool pool(4);
    // Index 5 fails transiently twice before succeeding; with a 3-attempt
    // budget the batch completes and the slot holds the final value.
    std::atomic<int> failures_left{2};
    const auto results = parallel_map(
        pool, 16,
        [&failures_left](std::size_t i) {
            if (i == 5 && failures_left.fetch_sub(1) > 0) {
                throw TransientError("collection path down");
            }
            return i * 10;
        },
        CellRetry{3});
    ASSERT_EQ(results.size(), 16u);
    EXPECT_EQ(results[5], 50u);
    EXPECT_EQ(failures_left.load(), -1);  // 2 failures + 1 success consumed 3 draws
}

TEST(CellRetry, TransientFailurePersistingPastBudgetSurfaces) {
    TaskPool pool(2);
    std::atomic<int> attempts{0};
    try {
        parallel_for(
            pool, 0, 8,
            [&attempts](std::size_t i) {
                if (i == 3) {
                    attempts.fetch_add(1);
                    throw TransientError("always down");
                }
            },
            CellRetry{3});
        FAIL() << "expected the transient error to persist";
    } catch (const TransientError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kTransient);
        // The diagnostic names the cell and the exhausted budget.
        EXPECT_NE(std::string(e.what()).find("cell 3"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("3 attempt(s)"), std::string::npos);
    }
    EXPECT_EQ(attempts.load(), 3);  // bounded: exactly max_attempts tries
}

TEST(CellRetry, PermanentFailureIsNotRetried) {
    TaskPool pool(2);
    std::atomic<int> attempts{0};
    EXPECT_THROW(parallel_for(
                     pool, 0, 4,
                     [&attempts](std::size_t i) {
                         if (i == 1) {
                             attempts.fetch_add(1);
                             throw InvalidArgument("bad input");
                         }
                     },
                     CellRetry{5}),
                 InvalidArgument);
    EXPECT_EQ(attempts.load(), 1);
}

TEST(CellRetry, LowestIndexWinsAcrossMixedSeverities) {
    TaskPool pool(4);
    // Index 2 fails permanently, index 5 transiently past its budget: the
    // lowest-index error must be the one rethrown, every time.
    for (int round = 0; round < 5; ++round) {
        try {
            parallel_for(
                pool, 0, 16,
                [](std::size_t i) {
                    if (i == 2) throw InvalidArgument("permanent at 2");
                    if (i == 5) throw TransientError("transient at 5");
                },
                CellRetry{2});
            FAIL() << "expected an exception";
        } catch (const InvalidArgument& e) {
            EXPECT_STREQ(e.what(), "permanent at 2");
        }
    }
}

TEST(CellRetry, SerialPathRetriesIdentically) {
    int failures_left = 1;
    const auto results = serial_map(
        4,
        [&failures_left](std::size_t i) {
            if (i == 2 && failures_left-- > 0) throw TransientError("blip");
            return i + 100;
        },
        CellRetry{2});
    EXPECT_EQ(results[2], 102u);

    int attempts = 0;
    EXPECT_THROW(serial_for(
                     0, 4,
                     [&attempts](std::size_t i) {
                         if (i == 1) {
                             ++attempts;
                             throw TransientError("always");
                         }
                     },
                     CellRetry{4}),
                 TransientError);
    EXPECT_EQ(attempts, 4);
}

TEST(ParallelFor, StressManyBatchesOnSharedPool) {
    TaskPool pool(4, /*queue_capacity=*/4);  // tiny queue: exercise backpressure
    std::atomic<long> total{0};
    for (int batch = 0; batch < 20; ++batch) {
        parallel_for(pool, 0, 100,
                     [&total](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
    }
    EXPECT_EQ(total.load(), 2000);
}

}  // namespace
}  // namespace zerodeg::core
