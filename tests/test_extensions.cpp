// Tests for the extension features: wet-bulb psychrometrics, the wet-side
// economizer (paper reference [2]), the cooling cost model (Section 3's
// financial research question), and the full-year climatology (the paper's
// stated future work).
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "energy/cost_model.hpp"
#include "energy/economizer.hpp"
#include "weather/psychrometrics.hpp"
#include "weather/trace_io.hpp"
#include "weather/weather_model.hpp"

namespace zerodeg {
namespace {

using core::Celsius;
using core::RelHumidity;
using core::TimePoint;
using core::Watts;

TEST(WetBulb, SaturatedAirWetBulbEqualsDryBulb) {
    for (const double t : {0.0, 10.0, 25.0}) {
        EXPECT_NEAR(weather::wet_bulb(Celsius{t}, RelHumidity{100.0}).value(), t, 0.6) << t;
    }
}

TEST(WetBulb, DryAirDepressesWetBulb) {
    const Celsius tw = weather::wet_bulb(Celsius{30.0}, RelHumidity{20.0});
    // Tables: ~15.7 degC for 30 degC / 20% RH.
    EXPECT_NEAR(tw.value(), 15.7, 1.0);
    EXPECT_LT(tw.value(), 30.0);
}

TEST(WetBulb, MonotoneInHumidity) {
    double prev = -100.0;
    for (double rh = 10.0; rh <= 100.0; rh += 10.0) {
        const double tw = weather::wet_bulb(Celsius{20.0}, RelHumidity{rh}).value();
        EXPECT_GT(tw, prev);
        prev = tw;
    }
}

TEST(WetBulb, NeverAboveDryBulb) {
    for (double t = -15.0; t <= 40.0; t += 5.0) {
        for (double rh = 5.0; rh <= 100.0; rh += 19.0) {
            EXPECT_LE(weather::wet_bulb(Celsius{t}, RelHumidity{rh}).value(), t + 1e-9);
        }
    }
}

TEST(WetSide, FreeCoolingWindowWiderThanAirSideInDryHeat) {
    // 24 degC at 25% RH: too warm for the air-side economizer's supply
    // limit, but the wet-bulb (~12.6 degC) makes tower water cold enough.
    const energy::AirEconomizer air;
    const energy::WetSideEconomizer wet;
    const Celsius t{24.0};
    EXPECT_FALSE(air.free_cooling(t));
    EXPECT_TRUE(wet.free_cooling(t, RelHumidity{25.0}));
    // ...but not in humid heat.
    EXPECT_FALSE(wet.free_cooling(Celsius{28.0}, RelHumidity{90.0}));
}

TEST(WetSide, PowerOrdering) {
    const energy::WetSideEconomizer wet;
    const Watts it = Watts::from_kilowatts(75.0);
    const double cold = wet.cooling_power(it, Celsius{-10.0}, RelHumidity{80.0}).value();
    const double hot = wet.cooling_power(it, Celsius{32.0}, RelHumidity{85.0}).value();
    EXPECT_NEAR(cold, 75000.0 * wet.config().tower_fraction, 1e-6);
    EXPECT_NEAR(hot, 75000.0 * wet.config().chiller_fraction, 1e-6);
    EXPECT_THROW((void)wet.cooling_power(Watts{-1.0}, Celsius{0.0}, RelHumidity{50.0}),
                 core::InvalidArgument);
}

TEST(WetSide, FanCheaperThanTowerInFreezingWeather) {
    // In the paper's climate an air-side economizer beats a wet-side one:
    // moving air costs less than moving air AND water.
    const energy::AirEconomizer air;
    const energy::WetSideEconomizer wet;
    const Watts it = Watts::from_kilowatts(75.0);
    EXPECT_LT(air.cooling_power(it, Celsius{-10.0}).value(),
              wet.cooling_power(it, Celsius{-10.0}, RelHumidity{85.0}).value());
}

TEST(WetSide, SeasonComparisonRuns) {
    weather::WeatherModel model(weather::helsinki_2010_config(), 7);
    const auto trace =
        weather::generate_trace(model, TimePoint::from_date(2010, 2, 10),
                                TimePoint::from_date(2010, 4, 10), core::Duration::hours(1));
    const auto summary = energy::compare_cooling_wet_side(
        trace, Watts::from_kilowatts(75.0), energy::WetSideEconomizer{});
    EXPECT_GT(summary.savings_fraction(), 0.3);
    EXPECT_GT(summary.free_cooling_hours / summary.hours, 0.9);
}

TEST(WetSide, BadConfigThrows) {
    energy::WetSideConfig cfg;
    cfg.chiller_fraction = 0.01;
    EXPECT_THROW(energy::WetSideEconomizer{cfg}, core::InvalidArgument);
}

TEST(CostModel, ConventionalVsFreeAirAtPaperScale) {
    const energy::CoolingCostModel model;
    // 75 kW cluster, ~300 servers, healthy 5% AFR.
    const auto crac = model.conventional(75.0, 300, 0.05);
    const auto free_air = model.free_air(75.0, 300, 0.05);
    // Same failure rate: free air wins on both energy and capex.
    EXPECT_LT(free_air.energy_eur_per_year, crac.energy_eur_per_year);
    EXPECT_LT(free_air.capex_eur_per_year, crac.capex_eur_per_year);
    EXPECT_DOUBLE_EQ(free_air.replacement_eur_per_year, crac.replacement_eur_per_year);
    EXPECT_LT(free_air.total(), crac.total());
}

TEST(CostModel, BreakEvenExcessAfrIsSubstantial) {
    // The paper's qualitative claim quantified: the energy+capex margin buys
    // a LOT of replacement servers, so even a visibly elevated failure rate
    // leaves free cooling ahead.
    const energy::CoolingCostModel model;
    const double excess = model.break_even_excess_afr(75.0, 300, 0.05);
    EXPECT_GT(excess, 0.05);  // > 5 percentage points of extra AFR per year
    // And the Intel comparator's observed delta (4.46% vs ~3-4% baseline)
    // is far below break-even.
    EXPECT_GT(excess, 0.0446 - 0.035);
}

TEST(CostModel, BreakEvenConsistency) {
    const energy::CoolingCostModel model;
    const double base = 0.05;
    const double excess = model.break_even_excess_afr(75.0, 300, base);
    const double at_break_even = model.free_air(75.0, 300, base + excess).total();
    const double conventional = model.conventional(75.0, 300, base).total();
    EXPECT_NEAR(at_break_even, conventional, 1.0);
}

TEST(CostModel, Validation) {
    energy::CostModelConfig cfg;
    cfg.electricity_eur_per_kwh = 0.0;
    EXPECT_THROW(energy::CoolingCostModel{cfg}, core::InvalidArgument);
    const energy::CoolingCostModel model;
    EXPECT_THROW((void)model.conventional(-1.0, 10, 0.05), core::InvalidArgument);
    EXPECT_THROW((void)model.free_air(1.0, -1, 0.05), core::InvalidArgument);
}

TEST(FullYear, SummerIsWarmWinterIsCold) {
    weather::WeatherModel model(weather::helsinki_full_year_config(), 9);
    core::RunningStats jan, jul;
    for (TimePoint t = TimePoint::from_date(2010, 1, 5); t < TimePoint::from_date(2010, 1, 25);
         t += core::Duration::hours(2)) {
        jan.add(model.advance_to(t).temperature.value());
    }
    for (TimePoint t = TimePoint::from_date(2010, 7, 5); t < TimePoint::from_date(2010, 7, 25);
         t += core::Duration::hours(2)) {
        jul.add(model.advance_to(t).temperature.value());
    }
    EXPECT_LT(jan.mean(), -5.0);
    EXPECT_GT(jul.mean(), 15.0);
    // The July heat wave pushes maxima near 30 degC.
    EXPECT_GT(jul.max(), 22.0);
}

TEST(FullYear, EconomizerStillSavesYearRound) {
    // Even with the hot July, a Helsinki year is dominated by free cooling —
    // the geographic claim of the paper's introduction.
    weather::WeatherModel model(weather::helsinki_full_year_config(), 9);
    const auto trace =
        weather::generate_trace(model, TimePoint::from_date(2010, 1, 2),
                                TimePoint::from_date(2010, 12, 30), core::Duration::hours(2));
    const auto summary = energy::compare_cooling(trace, Watts::from_kilowatts(75.0),
                                                 energy::AirEconomizer{});
    EXPECT_GT(summary.savings_fraction(), 0.5);
    EXPECT_GT(summary.free_cooling_hours / summary.hours, 0.75);
}

}  // namespace
}  // namespace zerodeg
