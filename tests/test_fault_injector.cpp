#include "faults/fault_injector.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::faults {
namespace {

using core::Duration;
using core::RngStream;
using core::TimePoint;

StressState office_stress() {
    StressState s;
    s.intake = Celsius{21.0};
    s.humidity = RelHumidity{35.0};
    s.age_hours = 22000.0;
    return s;
}

TEST(FaultProcess, FailureCountMatchesExpectation) {
    // With constant hazard h over time T the number of failures per host is
    // Poisson(h*T); check the fleet-mean against the analytic rate.
    InjectorParams params;
    const HostHazardModel model(params.hazard);
    const double per_hour = model.hazard_per_hour(office_stress());

    constexpr int kHosts = 600;
    const double hours = 5.0e4;  // long window so the mean is well-resolved
    double failures = 0.0;
    for (int i = 0; i < kHosts; ++i) {
        HostFaultProcess p(i, false, params, RngStream(static_cast<std::uint64_t>(i), "p"));
        for (int h = 0; h < 50; ++h) {
            if (p.advance(Duration::hours(1000), office_stress())) (void)p.classify_failure();
        }
        failures += p.failures_so_far();
    }
    const double expected = per_hour * hours;
    EXPECT_NEAR(failures / kHosts, expected, expected * 0.15);
}

TEST(FaultProcess, UnreliableFailsMoreOften) {
    InjectorParams params;
    int reliable = 0, unreliable = 0;
    for (int i = 0; i < 200; ++i) {
        HostFaultProcess a(i, false, params, RngStream(static_cast<std::uint64_t>(i), "a"));
        HostFaultProcess b(i, true, params, RngStream(static_cast<std::uint64_t>(i), "b"));
        for (int h = 0; h < 100; ++h) {
            if (a.advance(Duration::hours(100), office_stress())) ++reliable;
            if (b.advance(Duration::hours(100), office_stress())) ++unreliable;
        }
    }
    EXPECT_GT(unreliable, 5 * reliable);
}

TEST(FaultProcess, SecondFailureIsPermanent) {
    // The operator criterion applied to host #15.
    InjectorParams params;
    params.transient_probability = 1.0;  // first failure always transient
    params.failures_to_permanent = 2;
    HostFaultProcess p(15, true, params, RngStream(1, "p"));
    int fired = 0;
    std::vector<FaultSeverity> severities;
    while (fired < 2) {
        if (p.advance(Duration::hours(50), office_stress())) {
            ++fired;
            severities.push_back(p.classify_failure());
        }
    }
    ASSERT_EQ(severities.size(), 2u);
    EXPECT_EQ(severities[0], FaultSeverity::kTransient);
    EXPECT_EQ(severities[1], FaultSeverity::kPermanent);
}

TEST(FaultProcess, NegativeDtThrows) {
    HostFaultProcess p(1, false, InjectorParams{}, RngStream(1, "p"));
    EXPECT_THROW((void)p.advance(Duration::seconds(-1), office_stress()),
                 core::InvalidArgument);
}

TEST(Injector, RecordsToLog) {
    InjectorParams params;
    // Make failures frequent so the test is fast and deterministic-ish.
    params.hazard.base_afr = 500.0;
    FaultInjector injector(params, 42);
    injector.add_host(15, true);
    FaultLog log;
    bool fired = false;
    TimePoint now = TimePoint::from_date(2010, 3, 7);
    for (int i = 0; i < 10000 && !fired; ++i) {
        now += Duration::minutes(10);
        fired = injector
                    .advance_host(15, Duration::minutes(10), office_stress(), now, "host-15",
                                  true, log)
                    .has_value();
    }
    ASSERT_TRUE(fired);
    ASSERT_EQ(log.count(), 1u);
    EXPECT_EQ(log.records()[0].host_id, 15);
    EXPECT_EQ(log.records()[0].component, FaultComponent::kSystem);
    EXPECT_TRUE(log.records()[0].in_tent);
    EXPECT_EQ(log.records()[0].source, "host-15");
}

TEST(Injector, UnknownHostThrows) {
    FaultInjector injector(InjectorParams{}, 1);
    FaultLog log;
    EXPECT_THROW((void)injector.advance_host(7, Duration::minutes(10), office_stress(),
                                             TimePoint{}, "x", false, log),
                 core::InvalidArgument);
}

TEST(Injector, AddHostIdempotent) {
    FaultInjector injector(InjectorParams{}, 1);
    injector.add_host(1, false);
    injector.add_host(1, false);  // no throw, no reset
    EXPECT_NE(injector.process(1), nullptr);
    EXPECT_EQ(injector.process(99), nullptr);
}

TEST(Injector, DeterministicAcrossInstances) {
    const auto run = [] {
        FaultInjector injector(InjectorParams{}, 77);
        injector.add_host(15, true);
        FaultLog log;
        TimePoint now = TimePoint::from_date(2010, 2, 19);
        StressState tent;
        tent.intake = Celsius{-12.0};
        tent.humidity = RelHumidity{85.0};
        tent.age_hours = 22000.0;
        tent.cycling_rate_k_per_h = 1.0;
        for (int i = 0; i < 50000; ++i) {
            now += Duration::minutes(10);
            (void)injector.advance_host(15, Duration::minutes(10), tent, now, "host-15", true,
                                        log);
        }
        return log.count();
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace zerodeg::faults
