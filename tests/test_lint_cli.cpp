// End-to-end test of the `zerodeg_lint` binary: exit-code contract
// (0 = clean, 1 = new error-severity findings under --error-on-new,
// 2 = usage/I-O error), diagnostic format, and the baseline round trip.
// Runs the real executable (path baked in as ZERODEG_LINT_PATH) against a
// synthetic repo tree built in TempDir, so what is asserted here is exactly
// what the `lint_tree` CTest gate sees.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>

#include "cli_test_util.hpp"

namespace {

namespace fs = std::filesystem;

using CliResult = zerodeg::test::CommandResult;

/// Run the lint CLI with `args`, capturing exit code and combined output.
CliResult run_lint(const std::string& args) {
    return zerodeg::test::run_command(std::string(ZERODEG_LINT_PATH) + " " + args);
}

/// A throwaway repo root with a `src/experiment/` subtree, removed on exit.
/// The path embeds the test name and pid: ctest runs each discovered test as
/// its own concurrent process, so a shared fixture path would race.
class LintCli : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        root_ = fs::path(::testing::TempDir()) /
                ("lint_cli_" + std::string(info->name()) + "." + std::to_string(::getpid()));
        fs::remove_all(root_);
        fs::create_directories(root_ / "src" / "experiment");
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(root_, ec);  // never throw from teardown
    }

    void write_source(const std::string& rel, const std::string& content) {
        fs::create_directories((root_ / rel).parent_path());
        std::ofstream(root_ / rel) << content;
    }

    fs::path root_;
};

TEST_F(LintCli, CleanTreeExitsZero) {
    write_source("src/experiment/ok.cpp", "int answer() { return 42; }\n");
    const CliResult r = run_lint("--root " + root_.string() + " --error-on-new");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("1 files, 0 error(s)"), std::string::npos) << r.output;
}

TEST_F(LintCli, BannedTokenFailsTheGateWithItsCheckId) {
    write_source("src/experiment/bad.cpp",
                 "#include <random>\n"
                 "unsigned seed() { return std::random_device{}(); }\n");
    const CliResult r = run_lint("--root " + root_.string() + " --error-on-new");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[ZD002]"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("src/experiment/bad.cpp:2"), std::string::npos) << r.output;
}

TEST_F(LintCli, WithoutErrorOnNewFindingsAreReportOnly) {
    write_source("src/experiment/bad.cpp", "long stamp() { return time(nullptr); }\n");
    const CliResult r = run_lint("--root " + root_.string());
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("[ZD003]"), std::string::npos) << r.output;
}

TEST_F(LintCli, BaselineRoundTripAcceptsOldFindingsButNotNewOnes) {
    write_source("src/experiment/legacy.cpp", "int roll() { return rand(); }\n");
    const fs::path baseline = root_ / "baseline.txt";

    CliResult r = run_lint("--root " + root_.string() + " --baseline " + baseline.string() +
                           " --write-baseline");
    ASSERT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("wrote 1 baseline entry"), std::string::npos) << r.output;

    r = run_lint("--root " + root_.string() + " --baseline " + baseline.string() +
                 " --error-on-new");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("1 baselined"), std::string::npos) << r.output;

    // A fresh finding is still fatal even with the legacy one baselined.
    write_source("src/experiment/fresh.cpp", "int roll2() { return rand(); }\n");
    r = run_lint("--root " + root_.string() + " --baseline " + baseline.string() +
                 " --error-on-new");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("fresh.cpp"), std::string::npos) << r.output;
}

TEST_F(LintCli, ReasonlessSuppressionIsNeverBaselinable) {
    write_source("src/experiment/sloppy.cpp",
                 "int roll() { return rand(); }  // zerodeg-lint: allow(ZD001)\n");
    const fs::path baseline = root_ / "baseline.txt";
    CliResult r = run_lint("--root " + root_.string() + " --baseline " + baseline.string() +
                           " --write-baseline");
    ASSERT_EQ(r.exit_code, 0) << r.output;

    // ZD098 (missing reason) must survive the baseline and still fail the gate.
    r = run_lint("--root " + root_.string() + " --baseline " + baseline.string() +
                 " --error-on-new");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[ZD098]"), std::string::npos) << r.output;
}

TEST_F(LintCli, ProjectModeFlagsLayerViolationAndCycle) {
    // core reaching up into experiment, plus a two-header cycle: both ZD015.
    write_source("src/core/bad.hpp",
                 "#pragma once\n#include \"experiment/runner.hpp\"\n");
    write_source("src/experiment/runner.hpp", "#pragma once\n");
    write_source("src/core/loop_a.hpp", "#pragma once\n#include \"core/loop_b.hpp\"\n");
    write_source("src/core/loop_b.hpp", "#pragma once\n#include \"core/loop_a.hpp\"\n");
    const CliResult r = run_lint("--project --root " + root_.string() + " --error-on-new");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[ZD015]"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("crosses a layer boundary"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("include cycle: src/core/loop_a.hpp -> src/core/loop_b.hpp"),
              std::string::npos)
        << r.output;
}

TEST_F(LintCli, ProjectModeFlagsStreamCollisionAcrossSubsystems) {
    write_source("src/weather/w.cpp",
                 "void f(unsigned long long seed) {\n"
                 "  auto s = core::RngStream{seed, \"shared.stream\"};\n"
                 "}\n");
    write_source("src/faults/g.cpp",
                 "void g(unsigned long long seed) {\n"
                 "  core::RngStream s(seed, \"shared.stream\");\n"
                 "}\n");
    const CliResult r = run_lint("--project --root " + root_.string() + " --error-on-new");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("[ZD016]"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("shared.stream"), std::string::npos) << r.output;
}

TEST_F(LintCli, ProjectModeCleanTreePrintsArchitectureReport) {
    write_source("src/core/units.hpp", "#pragma once\n");
    write_source("src/weather/model.hpp", "#pragma once\n#include \"core/units.hpp\"\n");
    const CliResult r = run_lint("--project --root " + root_.string() + " --error-on-new");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("module graph"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("include cycles: 0"), std::string::npos) << r.output;
}

TEST_F(LintCli, GraphDotWritesWellFormedGraphviz) {
    write_source("src/core/units.hpp", "#pragma once\n");
    write_source("src/weather/model.hpp", "#pragma once\n#include \"core/units.hpp\"\n");
    const fs::path dot_path = root_ / "include_graph.dot";
    // --graph-dot implies --project; no explicit flag needed.
    const CliResult r =
        run_lint("--root " + root_.string() + " --graph-dot " + dot_path.string());
    EXPECT_EQ(r.exit_code, 0) << r.output;
    std::ifstream in(dot_path);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string dot = ss.str();
    EXPECT_EQ(dot.rfind("digraph zerodeg_layers {", 0), 0u) << dot;
    EXPECT_NE(dot.find("\"weather\" -> \"core\";"), std::string::npos) << dot;
    EXPECT_EQ(dot.substr(dot.size() - 2), "}\n") << dot;
    // Every line inside the braces is a node, an edge, or an attribute —
    // quote-balanced so Graphviz parses it without errors.
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0) << dot;
}

TEST_F(LintCli, JsonFormatIsStableAndMachineReadable) {
    write_source("src/experiment/bad.cpp",
                 "unsigned seed() { return std::random_device{}(); }\n");
    const CliResult r =
        run_lint("--root " + root_.string() + " --format=json --error-on-new");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_EQ(r.output.rfind("{\"files_scanned\":1,\"errors\":1,\"warnings\":0", 0), 0u)
        << r.output;
    EXPECT_NE(r.output.find("\"id\":\"ZD002\""), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("\"file\":\"src/experiment/bad.cpp\""), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"line\":1"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("\"severity\":\"error\""), std::string::npos) << r.output;
}

TEST_F(LintCli, ChangedModeLintsOnlyTheFilesOnStdin) {
    // Two files with findings; only the one named on stdin is scanned —
    // the pre-commit fast path: git diff --name-only | zerodeg_lint --changed.
    write_source("src/experiment/bad_a.cpp", "int a() { return rand(); }\n");
    write_source("src/experiment/bad_b.cpp", "int b() { return rand(); }\n");
    const CliResult r = zerodeg::test::run_command(
        "printf 'src/experiment/bad_a.cpp\\nsrc/experiment/gone.cpp\\nREADME.md\\n' | " +
        std::string(ZERODEG_LINT_PATH) + " --changed --root " + root_.string() +
        " --error-on-new");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("bad_a.cpp"), std::string::npos) << r.output;
    EXPECT_EQ(r.output.find("bad_b.cpp"), std::string::npos) << r.output;
    // Deleted files in the diff and non-C++ paths are skipped silently.
    EXPECT_NE(r.output.find("1 files"), std::string::npos) << r.output;
}

TEST_F(LintCli, ChangedPlusProjectIsAUsageError) {
    const CliResult r = zerodeg::test::run_command(
        "printf '' | " + std::string(ZERODEG_LINT_PATH) + " --changed --project --root " +
        root_.string());
    EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST_F(LintCli, ListChecksPrintsTheTable) {
    const CliResult r = run_lint("--list-checks");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("ZD001"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("ZD099"), std::string::npos) << r.output;
}

TEST_F(LintCli, UnknownFlagIsAUsageError) {
    EXPECT_EQ(run_lint("--walrus").exit_code, 2);
}

TEST_F(LintCli, WriteBaselineWithoutPathIsAUsageError) {
    EXPECT_EQ(run_lint("--root " + root_.string() + " --write-baseline").exit_code, 2);
}

}  // namespace
