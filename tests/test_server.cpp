#include "hardware/server.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::hardware {
namespace {

using core::Celsius;
using core::Duration;

Server make_server(Vendor v = Vendor::kA) {
    return Server(1, "host-01", spec_for(v), 42);
}

TEST(ServerTest, StartsPoweredOff) {
    Server s = make_server();
    EXPECT_EQ(s.state(), RunState::kPoweredOff);
    EXPECT_FALSE(s.operational());
    EXPECT_DOUBLE_EQ(s.wall_power().value(), 0.0);
}

TEST(ServerTest, PowerOnAndDraw) {
    Server s = make_server();
    s.power_on(Celsius{-5.0});
    EXPECT_TRUE(s.operational());
    EXPECT_GT(s.dc_power().value(), 40.0);
    // PSU losses: wall power strictly above DC power.
    EXPECT_GT(s.wall_power().value(), s.dc_power().value());
}

TEST(ServerTest, LoadRaisesPower) {
    Server s = make_server();
    s.power_on(Celsius{0.0});
    const double idle = s.wall_power().value();
    s.set_cpu_load(1.0);
    EXPECT_GT(s.wall_power().value(), idle + 30.0);
}

TEST(ServerTest, CrashAndReset) {
    Server s = make_server();
    s.power_on(Celsius{0.0});
    s.crash("transient");
    EXPECT_EQ(s.state(), RunState::kCrashed);
    EXPECT_FALSE(s.operational());
    EXPECT_EQ(s.crash_count(), 1);
    EXPECT_EQ(s.last_crash_reason(), "transient");
    EXPECT_DOUBLE_EQ(s.wall_power().value(), 0.0);
    EXPECT_TRUE(s.reset());
    EXPECT_TRUE(s.operational());
    EXPECT_FALSE(s.reset());  // not crashed anymore
}

TEST(ServerTest, CrashWhenOffIsIgnored) {
    Server s = make_server();
    s.crash("x");
    EXPECT_EQ(s.state(), RunState::kPoweredOff);
    EXPECT_EQ(s.crash_count(), 0);
}

TEST(ServerTest, StepTracksExposure) {
    Server s = make_server();
    s.power_on(Celsius{-5.0});
    s.step(Duration::hours(1), Celsius{-22.0});
    s.step(Duration::hours(1), Celsius{3.0});
    EXPECT_DOUBLE_EQ(s.min_intake_seen().value(), -22.0);
    EXPECT_DOUBLE_EQ(s.max_intake_seen().value(), 3.0);
    EXPECT_NEAR(s.uptime_hours(), 2.0, 1e-9);
}

TEST(ServerTest, NoUptimeWhileCrashed) {
    Server s = make_server();
    s.power_on(Celsius{0.0});
    s.crash("x");
    s.step(Duration::hours(5), Celsius{0.0});
    EXPECT_DOUBLE_EQ(s.uptime_hours(), 0.0);
}

TEST(ServerTest, ThermalsFollowIntake) {
    Server s = make_server();
    s.power_on(Celsius{-10.0});
    s.set_cpu_load(0.3);
    for (int i = 0; i < 200; ++i) s.step(Duration::minutes(10), Celsius{-10.0});
    // CPU above intake but nowhere near office temperatures.
    EXPECT_GT(s.cpu_temperature().value(), -10.0);
    EXPECT_LT(s.cpu_temperature().value(), 10.0);
    EXPECT_GT(s.hdd_temperature().value(), -10.0);
}

TEST(ServerTest, SensorReadWorksOnlyWhenRunning) {
    Server s = make_server();
    EXPECT_FALSE(s.read_cpu_sensor().has_value());
    s.power_on(Celsius{10.0});
    EXPECT_TRUE(s.read_cpu_sensor().has_value());
}

TEST(ServerTest, VendorSpecs) {
    EXPECT_EQ(vendor_a_spec().raid, RaidLayout::kSoftwareMirror);
    EXPECT_EQ(vendor_b_spec().raid, RaidLayout::kNone);
    EXPECT_EQ(vendor_c_spec().raid, RaidLayout::kMirrorPlusParity);
    EXPECT_TRUE(vendor_b_spec().known_unreliable);
    EXPECT_FALSE(vendor_a_spec().known_unreliable);
    EXPECT_TRUE(vendor_c_spec().ecc_memory);
    EXPECT_FALSE(vendor_a_spec().ecc_memory);
    EXPECT_FALSE(vendor_b_spec().ecc_memory);
}

TEST(ServerTest, DriveCountsMatchSection34) {
    // "two hard drives formed into a Linux multiple devices software mirror"
    EXPECT_EQ(make_server(Vendor::kA).storage().drives().size(), 2u);
    // "Only a single hard drive can fit in the case"
    EXPECT_EQ(make_server(Vendor::kB).storage().drives().size(), 1u);
    // "There are five hard drives in each"
    EXPECT_EQ(make_server(Vendor::kC).storage().drives().size(), 5u);
}

TEST(ServerTest, RackDrawsMoreThanSff) {
    Server rack = make_server(Vendor::kC);
    Server sff = make_server(Vendor::kB);
    rack.power_on(Celsius{20.0});
    sff.power_on(Celsius{20.0});
    EXPECT_GT(rack.wall_power().value(), 2.0 * sff.wall_power().value());
}

TEST(ServerTest, ResetHealsSensorChip) {
    Server s = make_server();
    s.power_on(Celsius{-20.0});
    s.set_cpu_load(0.0);
    // Freeze the chip until it glitches.
    for (int i = 0; i < 12 * 24 * 200 && s.sensor_chip().state() == SensorChipState::kHealthy;
         ++i) {
        s.step(Duration::minutes(10), Celsius{-25.0});
    }
    ASSERT_EQ(s.sensor_chip().state(), SensorChipState::kErratic);
    s.crash("for reboot");
    ASSERT_TRUE(s.reset());
    EXPECT_EQ(s.sensor_chip().state(), SensorChipState::kHealthy);
}

TEST(ServerTest, NegativeStepThrows) {
    Server s = make_server();
    s.power_on(Celsius{0.0});
    EXPECT_THROW(s.step(Duration::seconds(-1), Celsius{0.0}), core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::hardware
