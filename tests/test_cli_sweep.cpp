// End-to-end test of `zerodeg sweep`: real worker and coordinator processes
// talking over a real unix socket, lossy links via --net-faults, degraded
// buffering when the coordinator is away, and byte-identical convergence
// with a local `zerodeg census` run of the same campaign.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_test_util.hpp"

namespace {

namespace fs = std::filesystem;

zerodeg::test::CommandResult run_cli(const std::string& args) {
    return zerodeg::test::run_command(std::string(ZERODEG_CLI_PATH) + " " + args);
}

std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// A scratch dir under /tmp — NOT TempDir(): AF_UNIX socket paths are
/// limited to ~108 bytes and ctest temp dirs can blow past that.
fs::path short_scratch(const std::string& name) {
    const fs::path dir =
        fs::path("/tmp") / ("zd_sweep_" + std::to_string(::getpid()) + "_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// Launch coordinator + K workers as real processes, wait for all, return
/// each one's result (coordinator first).
std::vector<zerodeg::test::CommandResult> run_campaign(const fs::path& dir, std::size_t workers,
                                                       const std::string& common,
                                                       const std::string& worker_extra) {
    const std::string socket = (dir / "sweep.sock").string();
    std::vector<zerodeg::test::CommandResult> results(workers + 1);
    std::vector<std::thread> threads;
    threads.emplace_back([&] {
        results[0] = run_cli("sweep --coordinator --socket " + socket + " --checkpoint " +
                             (dir / "merged.journal").string() + " --idle-timeout-ms 30000 " +
                             common);
    });
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            results[w + 1] =
                run_cli("sweep --worker " + std::to_string(w) + "/" + std::to_string(workers) +
                        " --socket " + socket + " --checkpoint " +
                        (dir / ("w" + std::to_string(w) + ".journal")).string() + " " + common +
                        " " + worker_extra);
        });
    }
    for (std::thread& t : threads) t.join();
    return results;
}

TEST(CliSweep, UsageErrors) {
    EXPECT_EQ(run_cli("sweep").exit_code, 2);  // neither role
    EXPECT_EQ(run_cli("sweep --coordinator --worker 0/2 --socket /tmp/x --checkpoint /tmp/y")
                  .exit_code,
              2);  // both roles
    EXPECT_EQ(run_cli("sweep --coordinator --checkpoint /tmp/y").exit_code, 2);  // no socket
    EXPECT_EQ(run_cli("sweep --coordinator --socket /tmp/x").exit_code, 2);  // no checkpoint
    EXPECT_EQ(run_cli("sweep --worker 2/2 --socket /tmp/x --checkpoint /tmp/y").exit_code, 2);
    EXPECT_EQ(run_cli("sweep --worker banana --socket /tmp/x --checkpoint /tmp/y").exit_code, 2);
    EXPECT_EQ(run_cli("sweep --worker 0/2 --socket /tmp/x --checkpoint /tmp/y --torture")
                  .exit_code,
              2);  // census-only flag
    EXPECT_EQ(run_cli("sweep --worker --spawn-workers 2 --socket /tmp/x --checkpoint /tmp/y")
                  .exit_code,
              2);  // spawning is the coordinator's job
}

TEST(CliSweep, BareWorkerPullsLeases) {
    const fs::path dir = short_scratch("lease");
    const std::string socket = (dir / "sweep.sock").string();
    const std::string common = "--seeds 5 --synthetic";

    zerodeg::test::CommandResult coord;
    std::thread coordinator([&] {
        coord = run_cli("sweep --coordinator --socket " + socket + " --checkpoint " +
                        (dir / "merged.journal").string() + " --idle-timeout-ms 30000 " + common);
    });
    const auto worker = run_cli("sweep --worker --socket " + socket + " --checkpoint " +
                                (dir / "w0.journal").string() + " " + common);
    coordinator.join();
    ASSERT_EQ(coord.exit_code, 0) << coord.output;
    ASSERT_EQ(worker.exit_code, 0) << worker.output;
    // The worker asked for work instead of owning a static shard...
    EXPECT_NE(worker.output.find("lease mode"), std::string::npos) << worker.output;
    // ...and the coordinator granted leases and still prints the exact
    // local-census table.
    EXPECT_NE(coord.output.find("lease(s) granted"), std::string::npos) << coord.output;
    const auto local = run_cli("census " + common);
    ASSERT_EQ(local.exit_code, 0) << local.output;
    EXPECT_NE(coord.output.find(local.output), std::string::npos)
        << "coordinator output:\n"
        << coord.output << "\nlocal census output:\n"
        << local.output;
    fs::remove_all(dir);
}

TEST(CliSweep, SpawnWorkersRunsTheWholeCampaignInOneCommand) {
    const fs::path dir = short_scratch("spawn");
    const std::string common = "--seeds 6 --synthetic";

    const auto result =
        run_cli("sweep --coordinator --socket " + (dir / "sweep.sock").string() +
                " --checkpoint " + (dir / "merged.journal").string() +
                " --idle-timeout-ms 30000 --spawn-workers 2 " + common);
    ASSERT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("spawned 2 local worker(s)"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("lease(s) granted"), std::string::npos) << result.output;

    const auto local = run_cli("census " + common);
    ASSERT_EQ(local.exit_code, 0) << local.output;
    EXPECT_NE(result.output.find(local.output), std::string::npos)
        << "coordinator output:\n"
        << result.output << "\nlocal census output:\n"
        << local.output;

    // Each spawned worker journals locally next to the merged checkpoint.
    EXPECT_TRUE(fs::exists(dir / "merged.journal.worker0"));
    EXPECT_TRUE(fs::exists(dir / "merged.journal.worker1"));
    fs::remove_all(dir);
}

TEST(CliSweep, DistributedCampaignMatchesLocalCensusByteForByte) {
    const fs::path dir = short_scratch("match");
    const std::string common = "--seeds 5 --synthetic";

    const auto results = run_campaign(dir, 2, common, "");
    ASSERT_EQ(results[0].exit_code, 0) << results[0].output;
    ASSERT_EQ(results[1].exit_code, 0) << results[1].output;
    ASSERT_EQ(results[2].exit_code, 0) << results[2].output;

    // The coordinator's table is the local census's table, byte for byte
    // (the banner lines above it are coordinator-specific).
    const auto local = run_cli("census " + common);
    ASSERT_EQ(local.exit_code, 0) << local.output;
    EXPECT_NE(results[0].output.find(local.output), std::string::npos)
        << "coordinator output:\n"
        << results[0].output << "\nlocal census output:\n"
        << local.output;
    fs::remove_all(dir);
}

TEST(CliSweep, LossyLinksAreInvisibleInTheMergedJournal) {
    const fs::path clean_dir = short_scratch("lossless");
    const fs::path lossy_dir = short_scratch("lossy");
    const std::string common = "--seeds 6 --synthetic";

    const auto clean = run_campaign(clean_dir, 2, common, "");
    const auto lossy = run_campaign(lossy_dir, 2, common, "--net-faults 1234");
    for (const auto& r : clean) ASSERT_EQ(r.exit_code, 0) << r.output;
    for (const auto& r : lossy) ASSERT_EQ(r.exit_code, 0) << r.output;

    EXPECT_EQ(slurp(clean_dir / "merged.journal"), slurp(lossy_dir / "merged.journal"));
    // The frame/duplicate tallies in the banner legitimately differ; the
    // census table itself must not.
    const auto table = [](const std::string& out) {
        const std::size_t at = out.find("\nseed ");
        return at == std::string::npos ? out : out.substr(at);
    };
    EXPECT_EQ(table(clean[0].output), table(lossy[0].output));
    fs::remove_all(clean_dir);
    fs::remove_all(lossy_dir);
}

TEST(CliSweep, UnreachableCoordinatorDegradesToLocalBufferingThenDrains) {
    const fs::path dir = short_scratch("degraded");
    const std::string socket = (dir / "sweep.sock").string();
    const std::string journal = (dir / "w0.journal").string();
    const std::string common = "--seeds 4 --synthetic";

    // No coordinator anywhere: the worker must still succeed, with every
    // cell buffered in its local journal.
    const auto offline = run_cli("sweep --worker 0/1 --socket " + socket + " --checkpoint " +
                                 journal + " " + common);
    ASSERT_EQ(offline.exit_code, 0) << offline.output;
    EXPECT_NE(offline.output.find("degraded"), std::string::npos) << offline.output;
    EXPECT_NE(offline.output.find("4 cell(s) buffered"), std::string::npos) << offline.output;
    ASSERT_TRUE(fs::exists(journal));

    // The coordinator comes back; a re-run streams the buffered cells
    // without re-simulating a thing.
    std::thread coordinator([&] {
        (void)run_cli("sweep --coordinator --socket " + socket + " --checkpoint " +
                      (dir / "merged.journal").string() + " --idle-timeout-ms 30000 " + common);
    });
    const auto drained = run_cli("sweep --worker 0/1 --socket " + socket + " --checkpoint " +
                                 journal + " " + common);
    coordinator.join();
    ASSERT_EQ(drained.exit_code, 0) << drained.output;
    EXPECT_NE(drained.output.find("0 simulated, 4 reused"), std::string::npos) << drained.output;
    EXPECT_EQ(drained.output.find("degraded"), std::string::npos) << drained.output;
    fs::remove_all(dir);
}

TEST(CliSweep, ForeignCampaignWorkerIsRejected) {
    const fs::path dir = short_scratch("foreign");
    const std::string socket = (dir / "sweep.sock").string();

    std::thread coordinator([&] {
        (void)run_cli("sweep --coordinator --socket " + socket + " --checkpoint " +
                      (dir / "merged.journal").string() +
                      " --seeds 4 --synthetic --idle-timeout-ms 5000");
    });
    // Same cell count, different campaign shape (--end changes every cell's
    // config hash): the coordinator must turn the worker away loudly.
    const auto rejected = run_cli("sweep --worker 0/1 --socket " + socket + " --checkpoint " +
                                  (dir / "w0.journal").string() +
                                  " --seeds 4 --synthetic --end 2010-02-20");
    EXPECT_EQ(rejected.exit_code, 1) << rejected.output;
    EXPECT_NE(rejected.output.find("rejected"), std::string::npos) << rejected.output;
    coordinator.join();
    fs::remove_all(dir);
}

}  // namespace
