#include "workload/md5.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::workload {
namespace {

std::string hex_of(const std::string& s) {
    Md5 h;
    h.update(s);
    return to_hex(h.finalize());
}

// The RFC 1321 appendix test suite, verbatim.
struct Rfc1321Case {
    const char* input;
    const char* digest;
};

class Rfc1321 : public ::testing::TestWithParam<Rfc1321Case> {};

TEST_P(Rfc1321, Matches) {
    const auto& [input, digest] = GetParam();
    EXPECT_EQ(hex_of(input), digest);
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, Rfc1321,
    ::testing::Values(
        Rfc1321Case{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Rfc1321Case{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Rfc1321Case{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Rfc1321Case{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Rfc1321Case{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
        Rfc1321Case{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                    "d174ab98d277d9f5a5611c2c9f419d9f"},
        Rfc1321Case{"1234567890123456789012345678901234567890123456789012345678901234567890123456"
                    "7890",
                    "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5Test, IncrementalEqualsOneShot) {
    const std::string text(10000, 'x');
    Md5 whole;
    whole.update(text);
    Md5 pieces;
    // Deliberately awkward chunk sizes around the 64-byte block boundary.
    std::size_t off = 0;
    for (const std::size_t chunk : {1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
        pieces.update(text.substr(off, chunk));
        off += chunk;
    }
    pieces.update(text.substr(off));
    EXPECT_EQ(to_hex(whole.finalize()), to_hex(pieces.finalize()));
}

TEST(Md5Test, BlockBoundaryLengths) {
    // Padding edge cases: lengths around 55/56/64 take different paths.
    for (const std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
        const std::string a(len, 'q');
        Md5 h1, h2;
        h1.update(a);
        h2.update(a.substr(0, len / 2));
        h2.update(a.substr(len / 2));
        EXPECT_EQ(to_hex(h1.finalize()), to_hex(h2.finalize())) << len;
    }
}

TEST(Md5Test, OneShotHelper) {
    const std::string s = "abc";
    const auto d = md5(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
    EXPECT_EQ(to_hex(d), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, SingleBitChangesDigest) {
    std::vector<std::uint8_t> data(4096, 0xab);
    const Md5Digest before = md5(data);
    data[2048] ^= 0x01;
    const Md5Digest after = md5(data);
    EXPECT_NE(to_hex(before), to_hex(after));
}

TEST(Md5Test, ReuseAfterFinalizeThrows) {
    Md5 h;
    h.update(std::string("x"));
    (void)h.finalize();
    EXPECT_THROW(h.update(std::string("y")), core::InvalidArgument);
    EXPECT_THROW((void)h.finalize(), core::InvalidArgument);
}

TEST(Md5Test, ResetAllowsReuse) {
    Md5 h;
    h.update(std::string("abc"));
    (void)h.finalize();
    h.reset();
    h.update(std::string("abc"));
    EXPECT_EQ(to_hex(h.finalize()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, HexFormat) {
    Md5Digest d{};
    d[0] = 0x0f;
    d[15] = 0xf0;
    const std::string hex = to_hex(d);
    EXPECT_EQ(hex.size(), 32u);
    EXPECT_EQ(hex.substr(0, 2), "0f");
    EXPECT_EQ(hex.substr(30, 2), "f0");
}

}  // namespace
}  // namespace zerodeg::workload
