#include "experiment/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/timeseries.hpp"

namespace zerodeg::experiment {
namespace {

TEST(Report, FmtHelpers) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(-22.0, 1), "-22.0");
    EXPECT_EQ(fmt_pct(0.056), "5.6%");
    EXPECT_EQ(fmt_pct(0.0446, 2), "4.46%");
}

TEST(Report, TablePrinterLayout) {
    std::stringstream ss;
    TablePrinter t(ss, {"a", "b"}, {4, 6});
    t.row({"x", "y"});
    const std::string out = ss.str();
    EXPECT_NE(out.find("a     b"), std::string::npos);
    EXPECT_NE(out.find("----  ------"), std::string::npos);
    EXPECT_NE(out.find("x     y"), std::string::npos);
}

TEST(Report, TablePrinterMismatchThrows) {
    std::stringstream ss;
    EXPECT_THROW(TablePrinter(ss, {"a", "b"}, {4}), core::InvalidArgument);
}

TEST(Report, TablePrinterShortRowPadded) {
    std::stringstream ss;
    TablePrinter t(ss, {"a", "b", "c"}, {3, 3, 3});
    EXPECT_NO_THROW(t.row({"x"}));  // missing cells become blanks
}

TEST(Report, ComparisonBlock) {
    std::stringstream ss;
    print_comparison(ss, "TAB-PUE",
                     {{"PUE", "1.74", "1.74", "nameplate sum"}});
    const std::string out = ss.str();
    EXPECT_NE(out.find("== TAB-PUE =="), std::string::npos);
    EXPECT_NE(out.find("1.74"), std::string::npos);
    EXPECT_NE(out.find("this repro"), std::string::npos);
}

TEST(Report, AsciiPlotSmoke) {
    core::TimeSeries a("inside");
    core::TimeSeries b("outside");
    for (int i = 0; i < 100; ++i) {
        a.append(core::TimePoint{i * 3600}, 5.0 + i * 0.1);
        b.append(core::TimePoint{i * 3600}, -10.0 + i * 0.05);
    }
    std::stringstream ss;
    ascii_plot(ss, a, &b, 60, 10);
    const std::string out = ss.str();
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find("legend"), std::string::npos);
    EXPECT_NE(out.find("inside"), std::string::npos);
    EXPECT_NE(out.find("outside"), std::string::npos);
}

TEST(Report, AsciiPlotEmptySeries) {
    std::stringstream ss;
    ascii_plot(ss, core::TimeSeries{"x"}, nullptr);
    EXPECT_EQ(ss.str(), "(no data)\n");
}

TEST(Report, AsciiPlotConstantSeries) {
    core::TimeSeries a("flat");
    a.append(core::TimePoint{0}, 1.0);
    a.append(core::TimePoint{3600}, 1.0);
    std::stringstream ss;
    EXPECT_NO_THROW(ascii_plot(ss, a, nullptr, 40, 6));
}

}  // namespace
}  // namespace zerodeg::experiment
