#include "monitoring/power_meter.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::monitoring {
namespace {

using core::Duration;
using core::RngStream;
using core::Simulator;
using core::TimePoint;
using core::Watts;

TEST(PowerMeter, IntegratesEnergy) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    PowerMeterConfig cfg;
    cfg.gain_error_sigma = 0.0;  // perfect meter for this test
    cfg.quantization = Watts{0.0};
    TechnolineMeter meter(sim, [] { return Watts{600.0}; }, sim.now(), cfg, RngStream(1, "m"));
    sim.run_until(sim.now() + Duration::hours(10));
    EXPECT_NEAR(meter.true_energy().kilowatt_hours(), 6.0, 0.01);
    EXPECT_NEAR(meter.metered_energy().kilowatt_hours(), 6.0, 0.01);
}

TEST(PowerMeter, GainErrorIsSmallAndConstant) {
    // The Liikkanen & Nieminen comparison [4]: the unit performs admirably —
    // a percent-level calibration error.
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    TechnolineMeter meter(sim, [] { return Watts{600.0}; }, sim.now(), PowerMeterConfig{},
                          RngStream(7, "m"));
    sim.run_until(sim.now() + Duration::hours(24));
    EXPECT_NEAR(meter.gain(), 1.0, 0.06);
    const double ratio =
        meter.metered_energy().value() / meter.true_energy().value();
    EXPECT_NEAR(ratio, meter.gain(), 0.01);
}

TEST(PowerMeter, QuantizationToDisplayResolution) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    PowerMeterConfig cfg;
    cfg.gain_error_sigma = 0.0;
    cfg.quantization = Watts{5.0};
    TechnolineMeter meter(sim, [] { return Watts{123.0}; }, sim.now(), cfg, RngStream(1, "m"));
    sim.run_until(sim.now() + Duration::minutes(30));
    for (const core::Sample& s : meter.power_series()) {
        EXPECT_DOUBLE_EQ(s.value, 125.0);
    }
}

TEST(PowerMeter, TracksVaryingLoad) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    double load = 100.0;
    PowerMeterConfig cfg;
    cfg.gain_error_sigma = 0.0;
    cfg.quantization = Watts{0.0};
    TechnolineMeter meter(sim, [&load] { return Watts{load}; }, sim.now(), cfg,
                          RngStream(1, "m"));
    sim.run_until(sim.now() + Duration::hours(1));
    load = 500.0;  // more hosts installed
    sim.run_until(sim.now() + Duration::hours(1));
    const auto& series = meter.power_series();
    EXPECT_DOUBLE_EQ(series.front().value, 100.0);
    EXPECT_DOUBLE_EQ(series.back().value, 500.0);
}

TEST(PowerMeter, MissingSupplyThrows) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    EXPECT_THROW(TechnolineMeter(sim, nullptr, sim.now(), PowerMeterConfig{},
                                 RngStream(1, "m")),
                 core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::monitoring
