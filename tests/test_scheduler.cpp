#include "workload/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::workload {
namespace {

using core::Duration;
using core::Simulator;
using core::TimePoint;

LoadJob small_job() {
    LoadJobConfig cfg;
    cfg.corpus.total_bytes = 64 * 1024;
    cfg.target_blocks = 20;
    return LoadJob(cfg, 2010);
}

TEST(Scheduler, TenMinuteCadence) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    LoadScheduler sched(sim, small_job(), faults::MemoryFaultParams{}, 1);
    bool up = true;
    sched.add_host({1, false, [&up] { return up; }}, sim.now());
    sim.run_until(sim.now() + Duration::hours(10) + Duration::minutes(5));
    // 10 h at 6 runs/h, +1 for the t=0 cycle.
    EXPECT_EQ(sched.stats(1).runs, 61u);
    EXPECT_EQ(sched.total_runs(), 61u);
}

TEST(Scheduler, StartFuzzWithinTwoMinutes) {
    // "each host sleeps for 0 to 119 seconds before commencing"
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    LoadScheduler sched(sim, small_job(), faults::MemoryFaultParams{}, 1);
    sched.add_host({1, false, [] { return true; }}, sim.now());
    // After 119 s the first cycle must have fired; before 0 s it cannot.
    sim.run_until(sim.now() + Duration::seconds(120));
    EXPECT_EQ(sched.stats(1).runs, 1u);
}

TEST(Scheduler, DownHostSkipsCycles) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    LoadScheduler sched(sim, small_job(), faults::MemoryFaultParams{}, 1);
    bool up = true;
    sched.add_host({15, false, [&up] { return up; }}, sim.now());
    sim.run_until(sim.now() + Duration::hours(1) + Duration::minutes(5));
    const auto runs_before = sched.stats(15).runs;
    up = false;  // host #15 crashes
    sim.run_until(sim.now() + Duration::hours(1));
    EXPECT_EQ(sched.stats(15).runs, runs_before);
    EXPECT_GT(sched.stats(15).skipped, 0u);
}

TEST(Scheduler, InstallDateDelaysFirstRun) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    LoadScheduler sched(sim, small_job(), faults::MemoryFaultParams{}, 1);
    const TimePoint install = TimePoint::from_date(2010, 3, 10);  // host #15's date
    sched.add_host({15, false, [] { return true; }}, install);
    sim.run_until(TimePoint::from_date(2010, 3, 9));
    EXPECT_EQ(sched.stats(15).runs, 0u);
    sim.run_until(TimePoint::from_date(2010, 3, 11));
    EXPECT_GT(sched.stats(15).runs, 100u);
}

TEST(Scheduler, RemoveHostStopsScheduling) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    LoadScheduler sched(sim, small_job(), faults::MemoryFaultParams{}, 1);
    sched.add_host({1, false, [] { return true; }}, sim.now());
    sim.run_until(sim.now() + Duration::hours(1));
    const auto before = sched.stats(1).runs;
    sched.remove_host(1);
    sim.run_until(sim.now() + Duration::hours(2));
    EXPECT_EQ(sched.stats(1).runs, before);
}

TEST(Scheduler, DuplicateAndUnknownHostsThrow) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    LoadScheduler sched(sim, small_job(), faults::MemoryFaultParams{}, 1);
    sched.add_host({1, false, [] { return true; }}, sim.now());
    EXPECT_THROW(sched.add_host({1, false, [] { return true; }}, sim.now()),
                 core::InvalidArgument);
    EXPECT_THROW(sched.remove_host(9), core::InvalidArgument);
    EXPECT_THROW((void)sched.stats(9), core::InvalidArgument);
    EXPECT_THROW(sched.add_host({2, false, nullptr}, sim.now()), core::InvalidArgument);
}

TEST(Scheduler, WrongHashIncidentsCarryForensics) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    faults::MemoryFaultParams noisy;
    noisy.flip_probability_per_page_op = 1.0 / 2000.0;  // frequent flips
    LoadScheduler sched(sim, small_job(), noisy, 1);
    sched.add_host({1, false, [] { return true; }}, sim.now());
    sim.run_until(sim.now() + Duration::hours(12));
    ASSERT_GT(sched.total_wrong_hashes(), 0u);
    const auto& incidents = sched.incidents();
    ASSERT_FALSE(incidents.empty());
    EXPECT_EQ(incidents[0].host_id, 1);
    EXPECT_GT(incidents[0].total_blocks, 0u);
    EXPECT_GE(incidents[0].corrupt_blocks, 1u);
    EXPECT_EQ(sched.total_wrong_hashes(), incidents.size());
}

TEST(Scheduler, PageOpsAccumulate) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    LoadScheduler sched(sim, small_job(), faults::MemoryFaultParams{}, 1);
    sched.add_host({1, false, [] { return true; }}, sim.now());
    sim.run_until(sim.now() + Duration::hours(1) + Duration::minutes(5));
    EXPECT_EQ(sched.total_page_ops(),
              sched.stats(1).runs * sched.job().page_ops_per_run());
}

TEST(Scheduler, TwoHostsIndependentStreams) {
    Simulator sim(TimePoint::from_date(2010, 2, 19));
    LoadScheduler sched(sim, small_job(), faults::MemoryFaultParams{}, 1);
    sched.add_host({1, false, [] { return true; }}, sim.now());
    sched.add_host({2, true, [] { return true; }}, sim.now());
    sim.run_until(sim.now() + Duration::hours(5));
    EXPECT_EQ(sched.stats(1).runs, sched.stats(2).runs);
}

}  // namespace
}  // namespace zerodeg::workload
