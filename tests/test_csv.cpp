#include "core/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/timeseries.hpp"

namespace zerodeg::core {
namespace {

TEST(Csv, ParseSimpleLine) {
    const auto fields = parse_csv_line("a,b,c");
    EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Csv, ParseEmptyFields) {
    EXPECT_EQ(parse_csv_line(",,"), (std::vector<std::string>{"", "", ""}));
    EXPECT_EQ(parse_csv_line("a,"), (std::vector<std::string>{"a", ""}));
}

TEST(Csv, ParseQuotedWithComma) {
    const auto fields = parse_csv_line(R"(a,"b,c",d)");
    EXPECT_EQ(fields, (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(Csv, ParseEscapedQuote) {
    const auto fields = parse_csv_line(R"("say ""hi""",x)");
    EXPECT_EQ(fields, (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(Csv, ParseToleratesCr) {
    EXPECT_EQ(parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, UnterminatedQuoteThrows) {
    EXPECT_THROW((void)parse_csv_line(R"(a,"oops)"), CorruptData);
}

TEST(Csv, EscapeOnlyWhenNeeded) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WriterReaderRoundTrip) {
    std::stringstream ss;
    CsvWriter w(ss);
    w.write_row({"time", "value, with comma", "note\"quoted\""});
    w.write_row({"1", "2", "3"});

    CsvReader r(ss);
    std::vector<std::string> row;
    ASSERT_TRUE(r.read_row(row));
    EXPECT_EQ(row[1], "value, with comma");
    EXPECT_EQ(row[2], "note\"quoted\"");
    ASSERT_TRUE(r.read_row(row));
    EXPECT_EQ(row, (std::vector<std::string>{"1", "2", "3"}));
    EXPECT_FALSE(r.read_row(row));
}

TEST(Csv, ReaderSkipsBlankLines) {
    std::stringstream ss("a,b\n\n\nc,d\n");
    CsvReader r(ss);
    std::vector<std::string> row;
    ASSERT_TRUE(r.read_row(row));
    ASSERT_TRUE(r.read_row(row));
    EXPECT_EQ(row[0], "c");
    EXPECT_FALSE(r.read_row(row));
}

TEST(Csv, SeriesRoundTrip) {
    TimeSeries s("outside_temp");
    s.append(TimePoint::from_civil({2010, 2, 19, 0, 0, 0}), -10.2);
    s.append(TimePoint::from_civil({2010, 2, 19, 0, 10, 0}), -9.8);

    std::stringstream ss;
    write_series_csv(ss, s);
    const TimeSeries back = read_series_csv(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.name(), "outside_temp");
    EXPECT_EQ(back[0].time, s[0].time);
    EXPECT_NEAR(back[0].value, -10.2, 1e-6);
    EXPECT_NEAR(back[1].value, -9.8, 1e-6);
}

TEST(Csv, SeriesReadRejectsGarbage) {
    std::stringstream empty("");
    EXPECT_THROW((void)read_series_csv(empty), CorruptData);
    std::stringstream bad_time("time,v\nnot-a-time,1\n");
    EXPECT_THROW((void)read_series_csv(bad_time), CorruptData);
    std::stringstream short_row("time,v\n2010-01-01 00:00:00\n");
    EXPECT_THROW((void)read_series_csv(short_row), CorruptData);
}

}  // namespace
}  // namespace zerodeg::core
