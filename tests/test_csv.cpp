#include "core/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/timeseries.hpp"

namespace zerodeg::core {
namespace {

TEST(Csv, ParseSimpleLine) {
    const auto fields = parse_csv_line("a,b,c");
    EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Csv, ParseEmptyFields) {
    EXPECT_EQ(parse_csv_line(",,"), (std::vector<std::string>{"", "", ""}));
    EXPECT_EQ(parse_csv_line("a,"), (std::vector<std::string>{"a", ""}));
}

TEST(Csv, ParseQuotedWithComma) {
    const auto fields = parse_csv_line(R"(a,"b,c",d)");
    EXPECT_EQ(fields, (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(Csv, ParseEscapedQuote) {
    const auto fields = parse_csv_line(R"("say ""hi""",x)");
    EXPECT_EQ(fields, (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(Csv, ParseToleratesCr) {
    EXPECT_EQ(parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, UnterminatedQuoteThrows) {
    EXPECT_THROW((void)parse_csv_line(R"(a,"oops)"), CorruptData);
}

TEST(Csv, EscapeOnlyWhenNeeded) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WriterReaderRoundTrip) {
    std::stringstream ss;
    CsvWriter w(ss);
    w.write_row({"time", "value, with comma", "note\"quoted\""});
    w.write_row({"1", "2", "3"});

    CsvReader r(ss);
    std::vector<std::string> row;
    ASSERT_TRUE(r.read_row(row));
    EXPECT_EQ(row[1], "value, with comma");
    EXPECT_EQ(row[2], "note\"quoted\"");
    ASSERT_TRUE(r.read_row(row));
    EXPECT_EQ(row, (std::vector<std::string>{"1", "2", "3"}));
    EXPECT_FALSE(r.read_row(row));
}

TEST(Csv, ReaderSkipsBlankLines) {
    std::stringstream ss("a,b\n\n\nc,d\n");
    CsvReader r(ss);
    std::vector<std::string> row;
    ASSERT_TRUE(r.read_row(row));
    ASSERT_TRUE(r.read_row(row));
    EXPECT_EQ(row[0], "c");
    EXPECT_FALSE(r.read_row(row));
}

TEST(Csv, SeriesRoundTrip) {
    TimeSeries s("outside_temp");
    s.append(TimePoint::from_civil({2010, 2, 19, 0, 0, 0}), -10.2);
    s.append(TimePoint::from_civil({2010, 2, 19, 0, 10, 0}), -9.8);

    std::stringstream ss;
    write_series_csv(ss, s);
    const TimeSeries back = read_series_csv(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.name(), "outside_temp");
    EXPECT_EQ(back[0].time, s[0].time);
    EXPECT_NEAR(back[0].value, -10.2, 1e-6);
    EXPECT_NEAR(back[1].value, -9.8, 1e-6);
}

TEST(Csv, SeriesReadRejectsGarbage) {
    std::stringstream empty("");
    EXPECT_THROW((void)read_series_csv(empty), CorruptData);
    std::stringstream bad_time("time,v\nnot-a-time,1\n");
    EXPECT_THROW((void)read_series_csv(bad_time), CorruptData);
    std::stringstream short_row("time,v\n2010-01-01 00:00:00\n");
    EXPECT_THROW((void)read_series_csv(short_row), CorruptData);
}

TEST(Csv, ReaderTracksLineNumbers) {
    std::stringstream ss("a,b\n\n\nc,d\n");
    CsvReader r(ss);
    std::vector<std::string> row;
    EXPECT_EQ(r.line(), 0u);
    ASSERT_TRUE(r.read_row(row));
    EXPECT_EQ(r.line(), 1u);
    ASSERT_TRUE(r.read_row(row));
    EXPECT_EQ(r.line(), 4u);  // blank lines 2 and 3 are skipped but counted
}

TEST(Csv, ParseDoubleStrict) {
    EXPECT_DOUBLE_EQ(parse_csv_double("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(parse_csv_double("-9.2e0"), -9.2);
    EXPECT_THROW((void)parse_csv_double(""), ParseError);
    EXPECT_THROW((void)parse_csv_double("1.5abc"), ParseError);  // trailing junk
    EXPECT_THROW((void)parse_csv_double("abc"), ParseError);
    EXPECT_THROW((void)parse_csv_double("nan"), ParseError);
    EXPECT_THROW((void)parse_csv_double("inf"), ParseError);
    EXPECT_THROW((void)parse_csv_double("1e999"), ParseError);  // overflow
}

TEST(Csv, ParseU64Strict) {
    EXPECT_EQ(parse_csv_u64("0"), 0u);
    EXPECT_EQ(parse_csv_u64("18446744073709551615"), ~0ULL);
    EXPECT_THROW((void)parse_csv_u64(""), ParseError);
    EXPECT_THROW((void)parse_csv_u64("-3"), ParseError);  // must not wrap
    EXPECT_THROW((void)parse_csv_u64("+3"), ParseError);
    EXPECT_THROW((void)parse_csv_u64("12x"), ParseError);
    EXPECT_THROW((void)parse_csv_u64("18446744073709551616"), ParseError);  // overflow
}

TEST(Csv, ParseErrorsCarryLineNumbers) {
    try {
        (void)parse_csv_double("junk", 7);
        FAIL() << "should have thrown";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 7u);
        EXPECT_NE(std::string(e.what()).find("line 7"), std::string::npos);
    }
}

TEST(Csv, SeriesReadDiagnosesNonNumericValueWithLine) {
    std::stringstream bad("time,v\n2010-01-01 00:00:00,1.0\n2010-01-01 00:10:00,oops\n");
    try {
        (void)read_series_csv(bad);
        FAIL() << "should have thrown";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3u);  // the corrupt row, counting the header
        EXPECT_NE(std::string(e.what()).find("read_series_csv"), std::string::npos);
    }
}

TEST(Csv, SeriesReadRejectsTrailingJunkNumbers) {
    std::stringstream bad("time,v\n2010-01-01 00:00:00,1.0junk\n");
    EXPECT_THROW((void)read_series_csv(bad), ParseError);
}

TEST(Csv, UnterminatedQuoteReportsLine) {
    std::stringstream ss("a,b\n\"oops\n");
    CsvReader r(ss);
    std::vector<std::string> row;
    ASSERT_TRUE(r.read_row(row));
    try {
        (void)r.read_row(row);
        FAIL() << "should have thrown";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 2u);
    }
}

}  // namespace
}  // namespace zerodeg::core
