#include "weather/solar.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace zerodeg::weather {
namespace {

using core::TimePoint;

const Location kHelsinki{};

TEST(Solar, DeclinationRange) {
    for (int day = 1; day <= 365; ++day) {
        const double d = solar_declination_rad(day);
        EXPECT_LE(std::abs(d), 23.45 * M_PI / 180.0 + 1e-9);
    }
}

TEST(Solar, DeclinationSolstices) {
    // Summer solstice (~day 172): max positive; winter (~day 355): max negative.
    EXPECT_NEAR(solar_declination_rad(172), 23.45 * M_PI / 180.0, 0.01);
    EXPECT_NEAR(solar_declination_rad(355), -23.45 * M_PI / 180.0, 0.01);
    // Equinox (~day 81): near zero.
    EXPECT_NEAR(solar_declination_rad(81), 0.0, 0.02);
}

TEST(Solar, NightHasNoSun) {
    // Helsinki, midnight in February.
    const TimePoint midnight = TimePoint::from_civil({2010, 2, 20, 0, 0, 0});
    EXPECT_LT(solar_elevation_rad(midnight, kHelsinki), 0.0);
    EXPECT_DOUBLE_EQ(clear_sky_irradiance(midnight, kHelsinki).value(), 0.0);
}

TEST(Solar, NoonHasSunEvenInFebruary) {
    const TimePoint noon = TimePoint::from_civil({2010, 2, 20, 12, 30, 0});
    EXPECT_GT(solar_elevation_rad(noon, kHelsinki), 0.0);
    EXPECT_GT(clear_sky_irradiance(noon, kHelsinki).value(), 50.0);
}

TEST(Solar, NoonIsDailyPeak) {
    double best = -1.0;
    int best_hour = -1;
    for (int h = 0; h < 24; ++h) {
        const TimePoint t = TimePoint::from_civil({2010, 3, 15, h, 0, 0});
        const double ghi = clear_sky_irradiance(t, kHelsinki).value();
        if (ghi > best) {
            best = ghi;
            best_hour = h;
        }
    }
    EXPECT_GE(best_hour, 11);
    EXPECT_LE(best_hour, 13);
}

TEST(Solar, SpringStrongerThanWinter) {
    const TimePoint feb = TimePoint::from_civil({2010, 2, 20, 12, 0, 0});
    const TimePoint may = TimePoint::from_civil({2010, 5, 20, 12, 0, 0});
    EXPECT_GT(clear_sky_irradiance(may, kHelsinki).value(),
              2.0 * clear_sky_irradiance(feb, kHelsinki).value());
}

TEST(Solar, IrradianceBounded) {
    for (int day = 1; day <= 365; day += 7) {
        for (int h = 0; h < 24; h += 2) {
            const TimePoint t = TimePoint::from_date(2010, 1, 1) +
                                core::Duration::days(day - 1) + core::Duration::hours(h);
            const double ghi = clear_sky_irradiance(t, kHelsinki).value();
            EXPECT_GE(ghi, 0.0);
            EXPECT_LE(ghi, 1100.0);
        }
    }
}

TEST(Solar, CloudAttenuationMonotone) {
    const TimePoint noon = TimePoint::from_civil({2010, 4, 1, 12, 0, 0});
    double prev = cloudy_irradiance(noon, kHelsinki, 0.0).value();
    for (double c = 0.1; c <= 1.0; c += 0.1) {
        const double ghi = cloudy_irradiance(noon, kHelsinki, c).value();
        EXPECT_LE(ghi, prev + 1e-9);
        prev = ghi;
    }
    // Fully overcast keeps ~25% of clear-sky.
    EXPECT_NEAR(cloudy_irradiance(noon, kHelsinki, 1.0).value() /
                    clear_sky_irradiance(noon, kHelsinki).value(),
                0.25, 0.01);
}

TEST(Solar, CloudFractionClamped) {
    const TimePoint noon = TimePoint::from_civil({2010, 4, 1, 12, 0, 0});
    EXPECT_DOUBLE_EQ(cloudy_irradiance(noon, kHelsinki, -0.5).value(),
                     cloudy_irradiance(noon, kHelsinki, 0.0).value());
    EXPECT_DOUBLE_EQ(cloudy_irradiance(noon, kHelsinki, 1.5).value(),
                     cloudy_irradiance(noon, kHelsinki, 1.0).value());
}

TEST(Solar, DaylightHoursHelsinki) {
    // Helsinki: ~9-10 h in late February, ~6 h around winter solstice,
    // ~18-19 h in midsummer.
    const double feb = daylight_hours(51, kHelsinki);
    EXPECT_NEAR(feb, 9.7, 1.0);
    const double winter = daylight_hours(355, kHelsinki);
    EXPECT_NEAR(winter, 5.8, 1.0);
    const double summer = daylight_hours(172, kHelsinki);
    EXPECT_NEAR(summer, 18.8, 1.2);
}

TEST(Solar, PolarCases) {
    const Location north_pole{89.9, 0.0, 0.0};
    EXPECT_DOUBLE_EQ(daylight_hours(172, north_pole), 24.0);  // midnight sun
    EXPECT_DOUBLE_EQ(daylight_hours(355, north_pole), 0.0);   // polar night
}

// Property: daylight length increases monotonically from winter solstice to
// summer solstice at this latitude.
class DaylightMonotone : public ::testing::TestWithParam<int> {};

TEST_P(DaylightMonotone, GrowsTowardSummer) {
    const int day = GetParam();
    EXPECT_LT(daylight_hours(day, kHelsinki), daylight_hours(day + 10, kHelsinki));
}

INSTANTIATE_TEST_SUITE_P(WinterToSummer, DaylightMonotone,
                         ::testing::Values(10, 40, 70, 100, 130, 160));

}  // namespace
}  // namespace zerodeg::weather
