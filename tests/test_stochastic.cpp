#include "weather/stochastic.hpp"

#include <gtest/gtest.h>
#include <cmath>


#include "core/error.hpp"
#include "core/stats.hpp"

namespace zerodeg::weather {
namespace {

using core::Duration;
using core::RngStream;
using core::RunningStats;

TEST(Ou, StationaryMoments) {
    OrnsteinUhlenbeck ou(5.0, 2.0, Duration::hours(1), RngStream(1, "ou"));
    RunningStats s;
    // Skip a burn-in, then sample well-separated points.
    for (int i = 0; i < 200; ++i) (void)ou.step(Duration::minutes(10));
    for (int i = 0; i < 20000; ++i) s.add(ou.step(Duration::minutes(30)));
    EXPECT_NEAR(s.mean(), 5.0, 0.15);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Ou, StepSizeInvariantDistribution) {
    // The exact discretization: stationary stddev must not depend on dt.
    const auto run = [](Duration dt, int steps) {
        OrnsteinUhlenbeck ou(0.0, 1.0, Duration::hours(2), RngStream(3, "ou"));
        RunningStats s;
        for (int i = 0; i < steps; ++i) s.add(ou.step(dt));
        return s.stddev();
    };
    const double fine = run(Duration::minutes(5), 40000);
    const double coarse = run(Duration::hours(6), 40000);
    EXPECT_NEAR(fine, 1.0, 0.08);
    EXPECT_NEAR(coarse, 1.0, 0.08);
}

TEST(Ou, MeanReversion) {
    OrnsteinUhlenbeck ou(0.0, 1.0, Duration::hours(1), RngStream(5, "ou"));
    ou.set_value(100.0);
    // After many time constants the excursion must be gone.
    double v = 100.0;
    for (int i = 0; i < 100; ++i) v = ou.step(Duration::hours(1));
    EXPECT_LT(std::abs(v), 6.0);
}

TEST(Ou, ZeroSigmaIsDeterministicDecay) {
    OrnsteinUhlenbeck ou(0.0, 0.0, Duration::hours(1), RngStream(7, "ou"));
    ou.set_value(8.0);
    const double v = ou.step(Duration::hours(1));
    EXPECT_NEAR(v, 8.0 * std::exp(-1.0), 1e-9);
}

TEST(Ou, SetMeanShiftsProcess) {
    OrnsteinUhlenbeck ou(0.0, 0.0, Duration::hours(1), RngStream(7, "ou"));
    ou.set_value(0.0);
    ou.set_mean(10.0);
    for (int i = 0; i < 50; ++i) (void)ou.step(Duration::hours(1));
    EXPECT_NEAR(ou.value(), 10.0, 1e-6);
}

TEST(Ou, InvalidParamsThrow) {
    EXPECT_THROW(OrnsteinUhlenbeck(0.0, 1.0, Duration::seconds(0), RngStream(1, "x")),
                 core::InvalidArgument);
    EXPECT_THROW(OrnsteinUhlenbeck(0.0, -1.0, Duration::hours(1), RngStream(1, "x")),
                 core::InvalidArgument);
}

TEST(ClampedOuTest, StaysInBounds) {
    ClampedOu wind(4.0, 3.0, Duration::hours(3), 0.0, 30.0, RngStream(11, "wind"));
    for (int i = 0; i < 20000; ++i) {
        const double v = wind.step(Duration::minutes(10));
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 30.0);
    }
}

TEST(ClampedOuTest, CloudFractionBounds) {
    ClampedOu cloud(0.65, 0.35, Duration::hours(9), 0.0, 1.0, RngStream(13, "cloud"));
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(cloud.step(Duration::minutes(10)));
    EXPECT_GE(s.min(), 0.0);
    EXPECT_LE(s.max(), 1.0);
    EXPECT_NEAR(s.mean(), 0.65, 0.12);  // clamping shifts it a little
}

TEST(ClampedOuTest, BadBoundsThrow) {
    EXPECT_THROW(ClampedOu(0.0, 1.0, Duration::hours(1), 1.0, 0.0, RngStream(1, "x")),
                 core::InvalidArgument);
}

TEST(ClampedOuTest, InitialValueClamped) {
    // Stationary init could land outside; constructor clamps.
    for (int seed = 0; seed < 50; ++seed) {
        ClampedOu c(0.5, 5.0, Duration::hours(1), 0.0, 1.0,
                    RngStream(static_cast<std::uint64_t>(seed), "c"));
        EXPECT_GE(c.value(), 0.0);
        EXPECT_LE(c.value(), 1.0);
    }
}

}  // namespace
}  // namespace zerodeg::weather
