#include "core/error.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace zerodeg::core {
namespace {

TEST(Error, CarriesCode) {
    EXPECT_EQ(Error("plain").code(), ErrorCode::kUnknown);
    EXPECT_EQ(InvalidArgument("x").code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(IoError("x").code(), ErrorCode::kIo);
    EXPECT_EQ(CorruptData("x").code(), ErrorCode::kCorruptData);
    EXPECT_EQ(ParseError("x").code(), ErrorCode::kParse);
    EXPECT_EQ(TransientError("x").code(), ErrorCode::kTransient);
    EXPECT_EQ(LeaseExpired("x").code(), ErrorCode::kLeaseExpired);
}

TEST(Error, CodeNames) {
    EXPECT_STREQ(to_string(ErrorCode::kTransient), "transient");
    EXPECT_STREQ(to_string(ErrorCode::kStaleJournal), "stale-journal");
    EXPECT_STREQ(to_string(ErrorCode::kLeaseExpired), "lease-expired");
    EXPECT_STREQ(to_string(ErrorCode::kUnknown), "unknown");
}

TEST(Error, LeaseExpiredIsAPlainErrorNotCorruptData) {
    // The supervisor reports a quarantined campaign by *throwing* this from
    // result(); it must never be swallowed by corrupt-frame handling (which
    // catches CorruptData — the trap StaleJournal deliberately sits in).
    static_assert(std::is_base_of_v<Error, LeaseExpired>);
    static_assert(!std::is_base_of_v<CorruptData, LeaseExpired>);
    EXPECT_STREQ(LeaseExpired("cell 3 quarantined").what(), "cell 3 quarantined");
}

TEST(Error, ContextChainsOutermostFirst) {
    ParseError e("bad magic", 3);
    e.add_context("header");
    e.add_context("loading journal 'x.journal'");
    EXPECT_STREQ(e.what(), "loading journal 'x.journal': header: line 3: bad magic");
    ASSERT_EQ(e.context().size(), 2u);
    EXPECT_EQ(e.context()[0], "header");           // innermost added first
    EXPECT_EQ(e.context()[1], "loading journal 'x.journal'");
    EXPECT_EQ(e.line(), 3u);
}

TEST(Error, WithContextDecoratesAndRethrowsSameType) {
    try {
        with_context("reading trace 'foo.csv'", []() -> int {
            throw ParseError("expected a number, got 'x'", 12);
        });
        FAIL() << "should have thrown";
    } catch (const ParseError& e) {
        // Derived type, code and line survive the decoration.
        EXPECT_EQ(e.code(), ErrorCode::kParse);
        EXPECT_EQ(e.line(), 12u);
        EXPECT_STREQ(e.what(),
                     "reading trace 'foo.csv': line 12: expected a number, got 'x'");
    }
}

TEST(Error, WithContextPassesThroughResultWhenNoError) {
    EXPECT_EQ(with_context("frame", [] { return 41 + 1; }), 42);
}

TEST(Error, WithContextLeavesForeignExceptionsAlone) {
    EXPECT_THROW(with_context("frame", [] { throw std::logic_error("not ours"); }),
                 std::logic_error);
}

TEST(Error, CatchableAsProjectBaseAndStdException) {
    try {
        throw TransientError("collection path down");
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kTransient);
    }
    try {
        throw InvalidArgument("bad");
    } catch (const std::exception& e) {
        EXPECT_STREQ(e.what(), "bad");
    }
}

TEST(Error, ParseErrorWithoutLine) {
    const ParseError e("empty file");
    EXPECT_EQ(e.line(), 0u);
    EXPECT_STREQ(e.what(), "empty file");
}

}  // namespace
}  // namespace zerodeg::core
