// CLI contract of the traffic workload: `--workload traffic|archive` flag
// validation and exit codes, the traffic lines of season/census output, and
// the chaos-path composition — traffic censuses under --inject-faults, the
// crash-at-every-write torture harness, and the v2 journal format gate.
// Runs the real `zerodeg` binary (ZERODEG_CLI_PATH), like test_cli_smoke.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli_test_util.hpp"

namespace {

namespace fs = std::filesystem;

int run_cli(const std::string& args) {
    return zerodeg::test::run_command(std::string(ZERODEG_CLI_PATH) + " " + args).exit_code;
}

zerodeg::test::CommandResult run_cli_capture(const std::string& args) {
    return zerodeg::test::run_command(std::string(ZERODEG_CLI_PATH) + " " + args);
}

std::string slurp(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

fs::path temp_file(const std::string& name) {
    fs::path p = fs::path(::testing::TempDir()) / name;
    fs::remove(p);
    return p;
}

TEST(CliTraffic, WorkloadFlagValidation) {
    EXPECT_EQ(run_cli("season --workload banana"), 2);
    EXPECT_EQ(run_cli("census --workload banana"), 2);
    EXPECT_EQ(run_cli("season --workload"), 2);       // missing value
    EXPECT_EQ(run_cli("weather --workload traffic"), 2);  // not a weather flag
    // --clone only means something under the traffic workload.
    EXPECT_EQ(run_cli("season --clone"), 2);
    EXPECT_EQ(run_cli("season --workload archive --clone"), 2);
    EXPECT_EQ(run_cli("census --clone"), 2);  // census has no cloning at all
}

TEST(CliTraffic, SeasonReportsTrafficLines) {
    const auto r = run_cli_capture("season --workload traffic --end 2010-02-21");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("traffic workload"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("requests: "), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("p99 sojourn: "), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("mean utilization"), std::string::npos) << r.output;
}

TEST(CliTraffic, ClonedSeasonSaysSoAndCancelsClones) {
    const auto r = run_cli_capture("season --workload traffic --clone --end 2010-02-21");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("cloned"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("clones cancelled"), std::string::npos) << r.output;
    // With both split sides up the whole window, someone always lost a race.
    EXPECT_EQ(r.output.find("clones cancelled 0\n"), std::string::npos) << r.output;
}

TEST(CliTraffic, ArchiveSeasonOutputStaysTrafficFree) {
    // The archive season's report must not grow traffic lines: downstream
    // parsers of the historical format keep working.
    const auto r = run_cli_capture("season --end 2010-02-21");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_EQ(r.output.find("requests:"), std::string::npos) << r.output;
    EXPECT_EQ(r.output.find("traffic:"), std::string::npos) << r.output;
}

TEST(CliTraffic, SeasonExportsTheSloCsv) {
    const fs::path dir = fs::path(::testing::TempDir()) / "traffic_export";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto r = run_cli_capture("season --workload traffic --end 2010-02-21 --export " +
                                   dir.string());
    EXPECT_EQ(r.exit_code, 0) << r.output;
    const std::string csv = slurp(dir / "traffic_slo.csv");
    EXPECT_NE(csv.find("time,completed,dropped,deadline_misses,p50_s"), std::string::npos);
    EXPECT_GT(csv.size(), 200u);  // header plus real tick rows

    // Archive exports must not gain the file.
    const fs::path dir2 = fs::path(::testing::TempDir()) / "archive_export";
    fs::remove_all(dir2);
    fs::create_directories(dir2);
    ASSERT_EQ(run_cli("season --end 2010-02-20 --export " + dir2.string()), 0);
    EXPECT_FALSE(fs::exists(dir2 / "traffic_slo.csv"));
}

TEST(CliTraffic, CensusAggregatesRequestsAcrossSeeds) {
    const auto r =
        run_cli_capture("census --workload traffic --seeds 2 --jobs 2 --end 2010-02-21");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("request(s) served"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("mean requests served/season"), std::string::npos) << r.output;

    // And the archive census table stays traffic-free.
    const auto archive = run_cli_capture("census --seeds 2 --end 2010-02-21");
    EXPECT_EQ(archive.exit_code, 0) << archive.output;
    EXPECT_EQ(archive.output.find("request(s) served"), std::string::npos) << archive.output;
}

TEST(CliTraffic, CheckpointRoundTripCarriesTrafficFields) {
    const fs::path journal = temp_file("traffic.journal");
    const std::string census =
        "census --workload traffic --seeds 2 --end 2010-02-21 --checkpoint " + journal.string();
    const auto first = run_cli_capture(census);
    ASSERT_EQ(first.exit_code, 0) << first.output;
    EXPECT_NE(slurp(journal).find("zerodeg-sweep-journal v2"), std::string::npos);

    // A full resume replays every cell from the journal; the traffic columns
    // must survive the round trip into an identical table.
    const auto resumed = run_cli_capture(census + " --resume");
    EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
    const std::size_t table_at = first.output.find("seed ");
    const std::size_t resumed_table_at = resumed.output.find("seed ");
    ASSERT_NE(table_at, std::string::npos);
    ASSERT_NE(resumed_table_at, std::string::npos);
    EXPECT_EQ(first.output.substr(table_at), resumed.output.substr(resumed_table_at));
}

TEST(CliTraffic, PreWideningJournalIsRejected) {
    // A v1-format journal (17 census integers, before the traffic columns)
    // must be refused outright — silently reading it would misalign fields.
    const fs::path journal = temp_file("old_format.journal");
    const std::string census = "census --seeds 2 --end 2010-02-21 --checkpoint " +
                               journal.string();
    ASSERT_EQ(run_cli(census), 0);
    std::string text = slurp(journal);
    const std::size_t magic = text.find("zerodeg-sweep-journal v2");
    ASSERT_NE(magic, std::string::npos);
    text.replace(magic, 24, "zerodeg-sweep-journal v1");
    std::ofstream(journal, std::ios::trunc) << text;

    EXPECT_EQ(run_cli(census + " --resume"), 1);
}

TEST(CliTraffic, InjectFaultsComposesWithTraffic) {
    const fs::path journal = temp_file("traffic_inject.journal");
    const auto r = run_cli_capture(
        "census --workload traffic --seeds 2 --end 2010-02-21 --inject-faults 7 --checkpoint " +
        journal.string());
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("fault injection:"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("request(s) served"), std::string::npos) << r.output;
}

TEST(CliTraffic, TortureCampaignPassesWithTraffic) {
    // Crash the traffic campaign at every journal write point and require
    // each resume to reproduce the uninterrupted table byte for byte — the
    // widened (v2) record format has to survive every torn-write prefix.
    const fs::path journal = temp_file("traffic_torture.journal");
    const auto r = run_cli_capture("census --workload traffic --seeds 2 --end 2010-02-20" +
                                   std::string(" --torture --checkpoint ") + journal.string());
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("-> PASS"), std::string::npos) << r.output;
    EXPECT_EQ(r.output.find("FAIL"), std::string::npos) << r.output;
}

}  // namespace
