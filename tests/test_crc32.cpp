#include "workload/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace zerodeg::workload {
namespace {

std::uint32_t crc_of(const std::string& s) {
    return crc32(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

TEST(Crc32Test, CheckValue) {
    // The canonical CRC-32/IEEE check value.
    EXPECT_EQ(crc_of("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, KnownVectors) {
    EXPECT_EQ(crc_of(""), 0x00000000u);
    EXPECT_EQ(crc_of("a"), 0xE8B7BE43u);
    EXPECT_EQ(crc_of("abc"), 0x352441C2u);
    EXPECT_EQ(crc_of("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
    const std::string text = "The quick brown fox jumps over the lazy dog";
    Crc32 c;
    for (const char ch : text) {
        const auto byte = static_cast<std::uint8_t>(ch);
        c.update(std::span<const std::uint8_t>(&byte, 1));
    }
    EXPECT_EQ(c.value(), 0x414FA339u);
}

TEST(Crc32Test, ResetRestores) {
    Crc32 c;
    const std::uint8_t b = 'x';
    c.update(std::span<const std::uint8_t>(&b, 1));
    c.reset();
    EXPECT_EQ(c.value(), 0x00000000u);
}

TEST(Crc32Test, SingleBitSensitivity) {
    std::vector<std::uint8_t> data(16384, 0x55);
    const std::uint32_t before = crc32(data);
    for (const std::size_t pos : {0u, 1000u, 16383u}) {
        for (const int bit : {0, 3, 7}) {
            auto copy = data;
            copy[pos] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_NE(crc32(copy), before) << pos << ":" << bit;
        }
    }
}

TEST(Crc32Test, ValueIsIdempotent) {
    Crc32 c;
    const std::uint8_t b = 'z';
    c.update(std::span<const std::uint8_t>(&b, 1));
    EXPECT_EQ(c.value(), c.value());
}

}  // namespace
}  // namespace zerodeg::workload
