// The collector's retry/backoff machinery: deterministic schedules (same
// master seed => byte-identical retry timeline), bounded attempts, explicit
// drop accounting on the bounded store-and-forward buffer — and the end-to-
// end guarantee that enabling retries on a failure-free network changes
// nothing about the season's census.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "experiment/census.hpp"
#include "experiment/parallel_census.hpp"
#include "monitoring/collector.hpp"

namespace zerodeg::monitoring {
namespace {

using core::Duration;
using core::RngStream;
using core::Simulator;
using core::TimePoint;

struct Rig {
    Simulator sim{TimePoint::from_date(2010, 2, 19)};
    Network net;
    std::size_t root = 0;
    std::size_t tent = 0;

    Rig() {
        hardware::SwitchConfig big;
        big.ports = 24;
        root = net.add_switch(hardware::NetworkSwitch("root", big, RngStream(1, "r")));
        tent = net.add_switch(
            hardware::NetworkSwitch("tent", hardware::SwitchConfig{}, RngStream(2, "t")));
        net.uplink(tent, root);
        net.attach({1000, "monitor"}, root);
    }
};

CollectorRetryPolicy retrying(int attempts, std::uint64_t seed = 42) {
    CollectorRetryPolicy p;
    p.max_attempts = attempts;
    p.base_backoff = Duration::seconds(30);
    p.backoff_factor = 2.0;
    p.max_backoff = Duration::minutes(5);
    p.jitter_frac = 0.1;
    p.master_seed = seed;
    return p;
}

Collector::HostBinding simple_host(int id, bool* up) {
    Collector::HostBinding b;
    b.host_id = id;
    b.reachable = [up] { return *up; };
    b.pending_bytes = [](TimePoint) { return std::uint64_t{2048}; };
    return b;
}

TEST(CollectorRetry, PolicyValidation) {
    Rig rig;
    CollectorRetryPolicy p = retrying(0);
    EXPECT_THROW(Collector(rig.sim, rig.net, 1000, Duration::minutes(20), p),
                 core::InvalidArgument);
    p = retrying(3);
    p.backoff_factor = 0.5;
    EXPECT_THROW(Collector(rig.sim, rig.net, 1000, Duration::minutes(20), p),
                 core::InvalidArgument);
    p = retrying(3);
    p.jitter_frac = 1.5;
    EXPECT_THROW(Collector(rig.sim, rig.net, 1000, Duration::minutes(20), p),
                 core::InvalidArgument);
    p = retrying(3);
    p.base_backoff = Duration::seconds(0);
    EXPECT_THROW(Collector(rig.sim, rig.net, 1000, Duration::minutes(20), p),
                 core::InvalidArgument);
}

TEST(CollectorRetry, RetriesAreBoundedAndCounted) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000, Duration::minutes(20), retrying(3));
    bool up = false;  // down the whole time
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(simple_host(1, &up), rig.sim.now());

    rig.sim.run_until(rig.sim.now() + Duration::minutes(19));
    // One sweep happened; it failed and was retried exactly twice more.
    const HostCollectionStats& st = coll.stats(1);
    EXPECT_EQ(st.attempts, 3u);
    EXPECT_EQ(st.retries, 2u);
    EXPECT_EQ(st.failures, 3u);
    EXPECT_EQ(st.successes, 0u);
    EXPECT_EQ(coll.total_retries(), 2u);
}

TEST(CollectorRetry, RetrySavesACollectionWithinTheSweepInterval) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000, Duration::minutes(20), retrying(3));
    bool up = true;
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(simple_host(1, &up), rig.sim.now());

    rig.sim.run_until(rig.sim.now() + Duration::minutes(10));  // first sweep succeeded
    up = false;
    rig.sim.run_until(rig.sim.now() + Duration::minutes(10) + Duration::seconds(20));
    // Second sweep just failed; bring the host back before its first retry
    // (~30 s of backoff) fires.
    up = true;
    rig.sim.run_until(rig.sim.now() + Duration::minutes(5));

    const HostCollectionStats& st = coll.stats(1);
    EXPECT_EQ(st.retry_successes, 1u);
    EXPECT_GE(st.successes, 2u);
    // The gap stayed under one cadence: the retry collected before the next
    // sweep would have.
    EXPECT_LT(st.longest_gap, Duration::minutes(25));
}

TEST(CollectorRetry, NoRetryChainStacksAcrossSweeps) {
    Rig rig;
    // max_backoff pushed way past the cadence: the chain is still pending
    // when the next sweep arrives, which must skip the host, not stack a
    // second chain.
    CollectorRetryPolicy p = retrying(10);
    p.base_backoff = Duration::minutes(15);
    p.max_backoff = Duration::minutes(60);
    Collector coll(rig.sim, rig.net, 1000, Duration::minutes(20), p);
    bool up = false;
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(simple_host(1, &up), rig.sim.now());

    rig.sim.run_until(rig.sim.now() + Duration::minutes(41));
    std::uint64_t sweep_attempts = 0;
    for (const CollectionAttempt& a : coll.log()) {
        if (!a.retry) ++sweep_attempts;
    }
    EXPECT_EQ(sweep_attempts, 1u);  // sweeps at t=20,40 skipped the busy host
}

TEST(CollectorRetry, SameSeedSameSchedule) {
    const auto timeline = [](std::uint64_t seed) {
        Rig rig;
        Collector coll(rig.sim, rig.net, 1000, Duration::minutes(20), retrying(4, seed));
        bool up = false;
        rig.net.attach({1, "host-01"}, rig.tent);
        coll.add_host(simple_host(1, &up), rig.sim.now());
        rig.sim.run_until(rig.sim.now() + Duration::hours(2));
        std::vector<std::int64_t> times;
        for (const CollectionAttempt& a : coll.log()) {
            if (a.retry) times.push_back(a.time.seconds_since_epoch());
        }
        return times;
    };
    const auto a = timeline(7);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, timeline(7));   // bit-for-bit repeatable
    EXPECT_NE(a, timeline(8));   // and actually seed-dependent (jittered)
}

TEST(CollectorRetry, BoundedBufferDropsOldestAndAccountsIt) {
    Rig rig;
    CollectorRetryPolicy p;  // no retries; just the bounded buffer
    p.buffer_capacity_bytes = 4096;
    Collector coll(rig.sim, rig.net, 1000, Duration::minutes(20), p);
    bool up = true;
    Collector::HostBinding b;
    b.host_id = 1;
    b.reachable = [&up] { return up; };
    // 1 byte per second since the last success: a long outage overflows the
    // 4 KiB host buffer.
    b.pending_bytes = [&rig](TimePoint since) {
        return static_cast<std::uint64_t>((rig.sim.now() - since).count());
    };
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(std::move(b), rig.sim.now());

    rig.sim.run_until(rig.sim.now() + Duration::minutes(1));
    up = false;
    rig.sim.run_until(rig.sim.now() + Duration::hours(3));
    up = true;
    rig.sim.run_until(rig.sim.now() + Duration::minutes(21));

    const HostCollectionStats& st = coll.stats(1);
    // The post-outage delta exceeded capacity: exactly capacity bytes were
    // collected, the overflow was dropped and accounted.
    EXPECT_GT(st.dropped_bytes, 0u);
    EXPECT_EQ(coll.total_dropped_bytes(), st.dropped_bytes);
    bool saw_capped = false;
    for (const CollectionAttempt& a : coll.log()) {
        if (a.ok && a.bytes == p.buffer_capacity_bytes) saw_capped = true;
        EXPECT_LE(a.bytes, p.buffer_capacity_bytes);
    }
    EXPECT_TRUE(saw_capped);
}

TEST(CollectorRetry, BufferExactlyFullCollectsEverythingWithoutDrops) {
    Rig rig;
    CollectorRetryPolicy p;
    p.buffer_capacity_bytes = 4096;
    Collector coll(rig.sim, rig.net, 1000, Duration::minutes(20), p);
    bool up = true;
    Collector::HostBinding b;
    b.host_id = 1;
    b.reachable = [&up] { return up; };
    // Exactly the buffer capacity pending, then exactly one byte over: the
    // drop accounting must kick in at capacity + 1, not at capacity.
    std::uint64_t pending = p.buffer_capacity_bytes;
    b.pending_bytes = [&pending](TimePoint) { return pending; };
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(std::move(b), rig.sim.now());

    rig.sim.run_until(rig.sim.now() + Duration::minutes(1));  // sweep at t=0
    EXPECT_EQ(coll.stats(1).bytes, p.buffer_capacity_bytes);
    EXPECT_EQ(coll.stats(1).dropped_bytes, 0u);

    pending = p.buffer_capacity_bytes + 1;
    rig.sim.run_until(rig.sim.now() + Duration::minutes(20));  // sweep at t=20
    const HostCollectionStats& st = coll.stats(1);
    EXPECT_EQ(st.successes, 2u);
    EXPECT_EQ(st.bytes, 2 * p.buffer_capacity_bytes);  // capped both times
    EXPECT_EQ(st.dropped_bytes, 1u);                   // the single overflow byte
}

TEST(CollectorRetry, DroppedBytesAccumulateAcrossOutagesAndResume) {
    Rig rig;
    CollectorRetryPolicy p;
    p.buffer_capacity_bytes = 4096;
    Collector coll(rig.sim, rig.net, 1000, Duration::minutes(20), p);
    const TimePoint install = rig.sim.now();
    bool up = true;
    Collector::HostBinding b;
    b.host_id = 1;
    b.reachable = [&up] { return up; };
    // The host produces 1 byte/second since the last successful collection,
    // so conservation is checkable: collected + dropped == elapsed seconds.
    b.pending_bytes = [&rig](TimePoint since) {
        return static_cast<std::uint64_t>((rig.sim.now() - since).count());
    };
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(std::move(b), rig.sim.now());

    // Outage #1: ~3 h dark, buffer overflows, service resumes.
    rig.sim.run_until(rig.sim.now() + Duration::minutes(1));
    up = false;
    rig.sim.run_until(rig.sim.now() + Duration::hours(3));
    up = true;
    rig.sim.run_until(rig.sim.now() + Duration::minutes(21));
    const std::uint64_t dropped_after_first = coll.stats(1).dropped_bytes;
    EXPECT_GT(dropped_after_first, 0u);

    // Outage #2: the counter keeps accumulating — resume must not reset or
    // double-count the first outage's losses.
    up = false;
    rig.sim.run_until(rig.sim.now() + Duration::hours(2));
    up = true;
    rig.sim.run_until(rig.sim.now() + Duration::minutes(21));

    const HostCollectionStats& st = coll.stats(1);
    EXPECT_GT(st.dropped_bytes, dropped_after_first);
    // Conservation across both outages: every byte the host produced up to
    // its last successful collection was either collected or accounted as
    // dropped, never both and never neither.
    const std::uint64_t produced =
        static_cast<std::uint64_t>((st.last_success - install).count());
    EXPECT_EQ(st.bytes + st.dropped_bytes, produced);
    EXPECT_EQ(coll.total_dropped_bytes(), st.dropped_bytes);
}

TEST(CollectorRetry, ZeroRetryConfigurationNeverSchedulesBackoff) {
    Rig rig;
    // max_attempts = 1 is the paper's zero-retry mode: the backoff knobs are
    // dormant, so even unusable values must not trip validation...
    CollectorRetryPolicy p;
    p.max_attempts = 1;
    p.base_backoff = Duration::seconds(0);
    p.backoff_factor = 0.0;
    Collector coll(rig.sim, rig.net, 1000, Duration::minutes(20), p);
    bool up = false;
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(simple_host(1, &up), rig.sim.now());

    // ...and a host that is down for three sweeps gets exactly one attempt
    // per sweep — no backoff chain ever forms.
    rig.sim.run_until(rig.sim.now() + Duration::minutes(59));
    const HostCollectionStats& st = coll.stats(1);
    EXPECT_EQ(st.attempts, 3u);
    EXPECT_EQ(st.retries, 0u);
    EXPECT_EQ(coll.total_retries(), 0u);
    for (const CollectionAttempt& a : coll.log()) EXPECT_FALSE(a.retry);
}

TEST(CollectorRetry, UnknownHostDiagnosticNamesTheHost) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000);
    try {
        (void)coll.stats(99);
        FAIL() << "expected InvalidArgument";
    } catch (const core::InvalidArgument& e) {
        EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
        EXPECT_NE(std::string(e.what()).find("99"), std::string::npos);
    }
}

/// End-to-end: on a season whose network never fails, enabling retries and
/// a (generous) bounded buffer is unobservable — the census is byte-for-byte
/// the census of the default policy.
TEST(CollectorRetry, RetriesDoNotPerturbAFailureFreeSeason) {
    using experiment::ExperimentConfig;
    using experiment::FaultCensus;

    const auto season = [](bool with_retries) {
        ExperimentConfig cfg;
        cfg.master_seed = 20100219;
        cfg.end = TimePoint::from_date(2010, 2, 26);  // one cheap week
        cfg.load.corpus.total_bytes = 64 * 1024;
        cfg.load.target_blocks = 20;
        // No defective loaner switches: the collection path stays healthy.
        cfg.switch_defect_mean_hours = 1e12;
        if (with_retries) {
            cfg.collector_retry.max_attempts = 4;
            cfg.collector_retry.buffer_capacity_bytes = 1ULL << 40;
        }
        return experiment::run_season_census(cfg);
    };
    const FaultCensus plain = season(false);
    const FaultCensus retried = season(true);
    EXPECT_EQ(std::memcmp(&plain, &retried, sizeof plain), 0)
        << "retry policy must be unobservable without failures";
}

}  // namespace
}  // namespace zerodeg::monitoring
