#include "monitoring/collector.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::monitoring {
namespace {

using core::Duration;
using core::RngStream;
using core::Simulator;
using core::TimePoint;

struct Rig {
    Simulator sim{TimePoint::from_date(2010, 2, 19)};
    Network net;
    std::size_t root = 0;
    std::size_t tent = 0;

    Rig() {
        hardware::SwitchConfig big;
        big.ports = 24;
        root = net.add_switch(hardware::NetworkSwitch("root", big, RngStream(1, "r")));
        tent = net.add_switch(
            hardware::NetworkSwitch("tent", hardware::SwitchConfig{}, RngStream(2, "t")));
        net.uplink(tent, root);
        net.attach({1000, "monitor"}, root);
    }
};

Collector::HostBinding simple_host(int id, bool* up) {
    Collector::HostBinding b;
    b.host_id = id;
    b.reachable = [up] { return *up; };
    b.pending_bytes = [](TimePoint) { return std::uint64_t{2048}; };
    return b;
}

TEST(CollectorTest, TwentyMinuteSweep) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000);
    bool up = true;
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(simple_host(1, &up), rig.sim.now());
    rig.sim.run_until(rig.sim.now() + Duration::hours(2) + Duration::minutes(1));
    // t=0 plus 6 more sweeps in 2h.
    EXPECT_EQ(coll.stats(1).attempts, 7u);
    EXPECT_EQ(coll.stats(1).successes, 7u);
    EXPECT_EQ(coll.stats(1).failures, 0u);
}

TEST(CollectorTest, DownHostCountsFailures) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000);
    bool up = true;
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(simple_host(1, &up), rig.sim.now());
    rig.sim.run_until(rig.sim.now() + Duration::hours(1));
    up = false;
    rig.sim.run_until(rig.sim.now() + Duration::hours(1));
    EXPECT_GT(coll.stats(1).failures, 0u);
    EXPECT_GT(coll.total_failures(), 0u);
}

TEST(CollectorTest, DeadSwitchBlocksCollection) {
    // Section 4.2.1's switch failures: hosts are fine, telemetry is not.
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000);
    bool up = true;
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(simple_host(1, &up), rig.sim.now());

    rig.sim.run_until(rig.sim.now() + Duration::hours(1));
    const auto ok_before = coll.stats(1).successes;
    // Kill the tent switch by swapping in an already-failed defective unit.
    hardware::SwitchConfig dead_cfg;
    dead_cfg.inherent_defect = true;
    dead_cfg.defect_mean_hours_to_failure = 1e-6;
    hardware::NetworkSwitch dead("dead", dead_cfg, RngStream(9, "d"));
    dead.step(Duration::hours(1));
    ASSERT_FALSE(dead.operational());
    rig.net.replace_switch(rig.tent, dead);

    rig.sim.run_until(rig.sim.now() + Duration::hours(2));
    EXPECT_EQ(coll.stats(1).successes, ok_before);
    EXPECT_GT(coll.stats(1).failures, 0u);
    EXPECT_GT(coll.stats(1).longest_gap, Duration::hours(2) - Duration::minutes(21));
}

TEST(CollectorTest, RsyncDeltaUsesLastSuccess) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000);
    bool up = true;
    Collector::HostBinding b;
    b.host_id = 1;
    b.reachable = [&up] { return up; };
    // Bytes proportional to the gap: 1 byte per second since last success.
    b.pending_bytes = [&rig](TimePoint since) {
        return static_cast<std::uint64_t>((rig.sim.now() - since).count());
    };
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(std::move(b), rig.sim.now());

    rig.sim.run_until(rig.sim.now() + Duration::minutes(41));
    // Sweeps at 0 (0 bytes), 20 (1200 s), 40 (1200 s).
    EXPECT_EQ(coll.stats(1).bytes, 2400u);

    up = false;
    rig.sim.run_until(rig.sim.now() + Duration::minutes(40));
    up = true;
    rig.sim.run_until(rig.sim.now() + Duration::minutes(21));
    // After two missed sweeps the next delta covers the whole gap.
    EXPECT_EQ(coll.stats(1).bytes, 2400u + 3600u);
}

TEST(CollectorTest, HostsJoinAtInstallDate) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000);
    bool up = true;
    rig.net.attach({15, "host-15"}, rig.tent);
    coll.add_host(simple_host(15, &up), TimePoint::from_date(2010, 3, 10));
    rig.sim.run_until(TimePoint::from_date(2010, 3, 9));
    EXPECT_EQ(coll.stats(15).attempts, 0u);
    rig.sim.run_until(TimePoint::from_date(2010, 3, 11));
    EXPECT_GT(coll.stats(15).attempts, 0u);
}

TEST(CollectorTest, RemovedHostNotSwept) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000);
    bool up = true;
    rig.net.attach({1, "host-01"}, rig.tent);
    coll.add_host(simple_host(1, &up), rig.sim.now());
    rig.sim.run_until(rig.sim.now() + Duration::hours(1));
    const auto before = coll.stats(1).attempts;
    coll.remove_host(1);
    rig.sim.run_until(rig.sim.now() + Duration::hours(1));
    EXPECT_EQ(coll.stats(1).attempts, before);
}

TEST(CollectorTest, Validation) {
    Rig rig;
    Collector coll(rig.sim, rig.net, 1000);
    bool up = true;
    coll.add_host(simple_host(1, &up), rig.sim.now());
    EXPECT_THROW(coll.add_host(simple_host(1, &up), rig.sim.now()), core::InvalidArgument);
    EXPECT_THROW(coll.remove_host(9), core::InvalidArgument);
    EXPECT_THROW((void)coll.stats(9), core::InvalidArgument);
    Collector::HostBinding bad;
    bad.host_id = 2;
    EXPECT_THROW(coll.add_host(std::move(bad), rig.sim.now()), core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::monitoring
