#include "hardware/network_switch.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::hardware {
namespace {

using core::Duration;
using core::RngStream;

TEST(Switch, HealthyUnitNeverFails) {
    NetworkSwitch sw("good", SwitchConfig{}, RngStream(1, "sw"));
    for (int i = 0; i < 10000; ++i) sw.step(Duration::hours(1));
    EXPECT_TRUE(sw.operational());
    EXPECT_FALSE(sw.whining());
    EXPECT_NEAR(sw.operating_hours(), 10000.0, 1e-6);
}

TEST(Switch, DefectiveUnitWhinesThenDies) {
    SwitchConfig cfg;
    cfg.inherent_defect = true;
    cfg.defect_mean_hours_to_failure = 170.0;
    NetworkSwitch sw("loaner", cfg, RngStream(3, "sw"));
    EXPECT_TRUE(sw.whining());  // "an annoying whining sound during normal operation"
    for (int i = 0; i < 24 * 365 && sw.operational(); ++i) sw.step(Duration::hours(1));
    EXPECT_FALSE(sw.operational());
    EXPECT_FALSE(sw.whining());  // dead units don't whine
}

TEST(Switch, FailureTimeRoughlyExponential) {
    SwitchConfig cfg;
    cfg.inherent_defect = true;
    cfg.defect_mean_hours_to_failure = 170.0;
    double total = 0.0;
    constexpr int kUnits = 400;
    for (int i = 0; i < kUnits; ++i) {
        NetworkSwitch sw("u", cfg, RngStream(static_cast<std::uint64_t>(i), "sw"));
        while (sw.operational()) sw.step(Duration::hours(1));
        total += sw.operating_hours();
    }
    // Mean within 15% of the configured 170 h ("after a week or so").
    EXPECT_NEAR(total / kUnits, 170.0, 26.0);
}

TEST(Switch, EnvironmentIndependence) {
    // The paper's conclusion: "the problem is inherent in these individual
    // switches" — our model takes no environment input at all, so identical
    // seeds fail at identical operating hours wherever they run.
    SwitchConfig cfg;
    cfg.inherent_defect = true;
    NetworkSwitch tent_unit("a", cfg, RngStream(7, "sw"));
    NetworkSwitch indoor_unit("b", cfg, RngStream(7, "sw"));
    while (tent_unit.operational()) tent_unit.step(Duration::minutes(10));
    while (indoor_unit.operational()) indoor_unit.step(Duration::minutes(10));
    EXPECT_DOUBLE_EQ(tent_unit.operating_hours(), indoor_unit.operating_hours());
}

TEST(Switch, PortsConfigured) {
    SwitchConfig cfg;
    cfg.ports = 8;
    NetworkSwitch sw("s", cfg, RngStream(1, "sw"));
    EXPECT_EQ(sw.ports(), 8);
}

TEST(Switch, NegativeDtThrows) {
    NetworkSwitch sw("s", SwitchConfig{}, RngStream(1, "sw"));
    EXPECT_THROW(sw.step(Duration::seconds(-1)), core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::hardware
