#include "thermal/rc_network.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::thermal {
namespace {

using core::Celsius;
using core::Duration;
using core::JoulesPerKelvin;
using core::Watts;
using core::WattsPerKelvin;

TEST(RcNetwork, SingleNodeRelaxesToAmbient) {
    ThermalNetwork net;
    const NodeId n = net.add_node("air", JoulesPerKelvin{1000.0}, Celsius{20.0},
                                  WattsPerKelvin{10.0});
    // Time constant C/G = 100 s; after 10 tau the node is at ambient.
    net.step(Duration::seconds(1000), Celsius{-10.0});
    EXPECT_NEAR(net.temperature(n).value(), -10.0, 0.05);
}

TEST(RcNetwork, PowerRaisesEquilibrium) {
    ThermalNetwork net;
    const NodeId n = net.add_node("tent", JoulesPerKelvin{1000.0}, Celsius{0.0},
                                  WattsPerKelvin{26.0});
    net.set_power(n, Watts{260.0});
    net.step(Duration::hours(2), Celsius{-10.0});
    // Equilibrium: ambient + P/G = -10 + 10 = 0.
    EXPECT_NEAR(net.temperature(n).value(), 0.0, 0.05);
    EXPECT_NEAR(net.local_equilibrium(n, Celsius{-10.0}).value(), 0.0, 1e-9);
}

TEST(RcNetwork, TwoNodesEqualize) {
    ThermalNetwork net;
    const NodeId a = net.add_node("a", JoulesPerKelvin{500.0}, Celsius{40.0});
    const NodeId b = net.add_node("b", JoulesPerKelvin{500.0}, Celsius{0.0});
    net.connect(a, b, WattsPerKelvin{5.0});
    net.step(Duration::hours(1), Celsius{0.0});
    // No ambient coupling: both settle at the (equal-capacity) average.
    EXPECT_NEAR(net.temperature(a).value(), 20.0, 0.1);
    EXPECT_NEAR(net.temperature(b).value(), 20.0, 0.1);
}

TEST(RcNetwork, ConservationWithoutAmbient) {
    // Total thermal energy (sum C_i T_i) is invariant without ambient
    // coupling or power.
    ThermalNetwork net;
    const NodeId a = net.add_node("a", JoulesPerKelvin{300.0}, Celsius{50.0});
    const NodeId b = net.add_node("b", JoulesPerKelvin{700.0}, Celsius{-10.0});
    net.connect(a, b, WattsPerKelvin{3.0});
    const double before = 300.0 * 50.0 + 700.0 * -10.0;
    net.step(Duration::minutes(30), Celsius{0.0});
    const double after =
        300.0 * net.temperature(a).value() + 700.0 * net.temperature(b).value();
    EXPECT_NEAR(after, before, std::abs(before) * 0.01 + 1.0);
}

TEST(RcNetwork, ChainCpuCaseAir) {
    // intake(ambient) -> case -> cpu, with cpu dissipating.
    ThermalNetwork net;
    const NodeId case_air =
        net.add_node("case", JoulesPerKelvin{2000.0}, Celsius{0.0}, WattsPerKelvin{8.0});
    const NodeId cpu = net.add_node("cpu", JoulesPerKelvin{50.0}, Celsius{0.0});
    net.connect(cpu, case_air, WattsPerKelvin{2.5});
    net.set_power(cpu, Watts{30.0});
    net.step(Duration::hours(4), Celsius{-10.0});
    // Case equilibrium: -10 + 30/8 = -6.25; CPU: case + 30/2.5 = +5.75.
    EXPECT_NEAR(net.temperature(case_air).value(), -6.25, 0.1);
    EXPECT_NEAR(net.temperature(cpu).value(), 5.75, 0.15);
}

TEST(RcNetwork, EdgeConductanceCanChange) {
    ThermalNetwork net;
    const NodeId a = net.add_node("a", JoulesPerKelvin{100.0}, Celsius{10.0},
                                  WattsPerKelvin{1.0});
    const NodeId b = net.add_node("b", JoulesPerKelvin{100.0}, Celsius{10.0});
    const std::size_t e = net.connect(a, b, WattsPerKelvin{1.0});
    EXPECT_DOUBLE_EQ(net.edge_conductance(e).value(), 1.0);
    net.set_edge_conductance(e, WattsPerKelvin{5.0});
    EXPECT_DOUBLE_EQ(net.edge_conductance(e).value(), 5.0);
}

TEST(RcNetwork, StableWithLargeSteps) {
    // The sub-stepping must keep explicit Euler stable even when the caller
    // steps far beyond the stiffest time constant.
    ThermalNetwork net;
    const NodeId n = net.add_node("stiff", JoulesPerKelvin{10.0}, Celsius{100.0},
                                  WattsPerKelvin{100.0});  // tau = 0.1 s
    net.step(Duration::hours(1), Celsius{0.0});
    EXPECT_NEAR(net.temperature(n).value(), 0.0, 0.01);  // no oscillation blow-up
}

TEST(RcNetwork, HeatFlowSign) {
    ThermalNetwork net;
    const NodeId n = net.add_node("n", JoulesPerKelvin{100.0}, Celsius{10.0},
                                  WattsPerKelvin{2.0});
    EXPECT_DOUBLE_EQ(net.heat_flow_to_ambient(n, Celsius{0.0}).value(), 20.0);
    EXPECT_DOUBLE_EQ(net.heat_flow_to_ambient(n, Celsius{20.0}).value(), -20.0);
}

TEST(RcNetwork, Validation) {
    ThermalNetwork net;
    EXPECT_THROW(net.add_node("bad", JoulesPerKelvin{0.0}, Celsius{0.0}),
                 core::InvalidArgument);
    EXPECT_THROW(net.add_node("bad", JoulesPerKelvin{1.0}, Celsius{0.0},
                              WattsPerKelvin{-1.0}),
                 core::InvalidArgument);
    const NodeId a = net.add_node("a", JoulesPerKelvin{1.0}, Celsius{0.0});
    EXPECT_THROW(net.connect(a, a, WattsPerKelvin{1.0}), core::InvalidArgument);
    EXPECT_THROW(net.connect(a, 99, WattsPerKelvin{1.0}), core::InvalidArgument);
    EXPECT_THROW((void)net.temperature(99), core::InvalidArgument);
    EXPECT_THROW(net.step(Duration::seconds(-1), Celsius{0.0}), core::InvalidArgument);
    EXPECT_THROW((void)net.local_equilibrium(a, Celsius{0.0}), core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::thermal
