#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::core {
namespace {

TimePoint at(std::int64_t s) { return TimePoint{s}; }

TEST(EventQueue, RunsInTimeOrder) {
    Simulator sim(at(0));
    std::vector<int> order;
    sim.schedule_at(at(30), [&] { order.push_back(3); });
    sim.schedule_at(at(10), [&] { order.push_back(1); });
    sim.schedule_at(at(20), [&] { order.push_back(2); });
    sim.run_until(at(100));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), at(100));
}

TEST(EventQueue, TiesAreFifo) {
    Simulator sim(at(0));
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        sim.schedule_at(at(10), [&order, i] { order.push_back(i); });
    }
    sim.run_until(at(10));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClockAdvancesDuringCallbacks) {
    Simulator sim(at(0));
    TimePoint seen;
    sim.schedule_at(at(42), [&] { seen = sim.now(); });
    sim.run_until(at(100));
    EXPECT_EQ(seen, at(42));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
    Simulator sim(at(0));
    int fired = 0;
    sim.schedule_at(at(50), [&] { ++fired; });
    sim.schedule_at(at(150), [&] { ++fired; });
    sim.run_until(at(100));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run_until(at(200));
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, Recurring) {
    Simulator sim(at(0));
    int count = 0;
    sim.schedule_every(at(0), Duration::seconds(10), [&] { ++count; });
    sim.run_until(at(95));
    EXPECT_EQ(count, 10);  // t = 0, 10, ..., 90
}

TEST(EventQueue, RecurringCancelFromInside) {
    Simulator sim(at(0));
    int count = 0;
    EventId id = 0;
    id = sim.schedule_every(at(0), Duration::seconds(10), [&] {
        if (++count == 3) sim.cancel(id);
    });
    sim.run_until(at(1000));
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, CancelPending) {
    Simulator sim(at(0));
    bool fired = false;
    const EventId id = sim.schedule_at(at(10), [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));  // double-cancel reports false
    sim.run_until(at(100));
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIsFalse) {
    Simulator sim(at(0));
    EXPECT_FALSE(sim.cancel(12345));
    EXPECT_FALSE(sim.cancel(0));
}

TEST(EventQueue, EventsScheduledDuringRun) {
    Simulator sim(at(0));
    std::vector<int> order;
    sim.schedule_at(at(10), [&] {
        order.push_back(1);
        sim.schedule_at(at(20), [&] { order.push_back(2); });
    });
    sim.run_until(at(100));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SchedulingInPastThrows) {
    Simulator sim(at(100));
    EXPECT_THROW(sim.schedule_at(at(50), [] {}), InvalidArgument);
    EXPECT_THROW(sim.schedule_every(at(50), Duration::seconds(10), [] {}), InvalidArgument);
}

TEST(EventQueue, EmptyCallbackThrows) {
    Simulator sim(at(0));
    EXPECT_THROW(sim.schedule_at(at(10), Simulator::Callback{}), InvalidArgument);
}

TEST(EventQueue, NonPositivePeriodThrows) {
    Simulator sim(at(0));
    EXPECT_THROW(sim.schedule_every(at(10), Duration::seconds(0), [] {}), InvalidArgument);
    EXPECT_THROW(sim.schedule_every(at(10), Duration::seconds(-5), [] {}), InvalidArgument);
}

TEST(EventQueue, StepOneAtATime) {
    Simulator sim(at(0));
    int fired = 0;
    sim.schedule_at(at(10), [&] { ++fired; });
    sim.schedule_at(at(20), [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(EventQueue, ScheduleInIsRelative) {
    Simulator sim(at(1000));
    TimePoint when;
    sim.schedule_in(Duration::seconds(50), [&] { when = sim.now(); });
    sim.run_until(at(2000));
    EXPECT_EQ(when, at(1050));
}

TEST(EventQueue, PendingCountExcludesCancelled) {
    Simulator sim(at(0));
    const EventId a = sim.schedule_at(at(10), [] {});
    sim.schedule_at(at(20), [] {});
    EXPECT_EQ(sim.pending_events(), 2u);
    sim.cancel(a);
    EXPECT_EQ(sim.pending_events(), 1u);
}

}  // namespace
}  // namespace zerodeg::core
