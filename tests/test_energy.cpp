#include <gtest/gtest.h>

#include "core/error.hpp"
#include "energy/cooling_plant.hpp"
#include "energy/economizer.hpp"
#include "energy/pue.hpp"
#include "weather/trace_io.hpp"

namespace zerodeg::energy {
namespace {

using core::TimePoint;

TEST(CoolingPlantTest, HelsinkiNameplates) {
    const CoolingPlant plant = helsinki_cluster_plant();
    ASSERT_EQ(plant.units().size(), 3u);
    // 6.9 + 44.7 + 3.8 = 55.4 kW of cooling power for 75 kW of IT.
    EXPECT_NEAR(plant.total_power_draw().kilowatts(), 55.4, 1e-9);
    EXPECT_TRUE(plant.sufficient_for(helsinki_cluster_it_load()));
    EXPECT_FALSE(plant.sufficient_for(core::Watts::from_kilowatts(80.0)));
}

TEST(CoolingPlantTest, PartLoadScalesDown) {
    const CoolingPlant plant = helsinki_cluster_plant();
    const core::Watts full = plant.power_to_cool(core::Watts::from_kilowatts(75.0));
    const core::Watts half = plant.power_to_cool(core::Watts::from_kilowatts(37.5));
    const core::Watts idle = plant.power_to_cool(core::Watts{0.0});
    EXPECT_NEAR(full.kilowatts(), 55.4, 1e-9);
    EXPECT_LT(half.value(), full.value());
    EXPECT_GT(half.value(), idle.value());
    // Standby floor: 35% of nameplate by default.
    EXPECT_NEAR(idle.kilowatts(), 0.35 * 55.4, 1e-9);
}

TEST(CoolingPlantTest, Validation) {
    CoolingPlant plant;
    EXPECT_THROW(plant.add_unit({"bad", core::Watts{-1.0}, core::Watts{1.0}}),
                 core::InvalidArgument);
    plant.add_unit({"ok", core::Watts{10.0}, core::Watts{100.0}});
    EXPECT_THROW((void)plant.power_to_cool(core::Watts{-5.0}), core::InvalidArgument);
    EXPECT_THROW((void)plant.power_to_cool(core::Watts{5.0}, 1.5), core::InvalidArgument);
}

TEST(Pue, PaperSection5Arithmetic) {
    // (75 + 6.9 + 44.7 + 3.8) / 75 = 1.739 — "a rather efficient 1.74".
    const PueBreakdown b = helsinki_cluster_pue();
    EXPECT_NEAR(b.pue, 1.74, 0.005);
    EXPECT_NEAR(b.it_load.kilowatts(), 75.0, 1e-9);
    EXPECT_NEAR(b.cooling.kilowatts(), 55.4, 1e-9);
}

TEST(Pue, LegacyCracsMakeItWorse) {
    // "Unfortunately, such is not the case ... the situation is worse, and
    // more energy is wasted."
    const PueBreakdown optimistic = helsinki_cluster_pue();
    const PueBreakdown realistic = helsinki_cluster_pue_with_legacy_cracs();
    EXPECT_GT(realistic.pue, optimistic.pue);
    EXPECT_THROW((void)helsinki_cluster_pue_with_legacy_cracs(1.5), core::InvalidArgument);
}

TEST(Pue, CalculatorComposition) {
    const PueBreakdown b = PueCalculator(core::Watts::from_kilowatts(100.0))
                               .add_cooling(core::Watts::from_kilowatts(30.0))
                               .add_distribution(core::Watts::from_kilowatts(10.0))
                               .compute();
    EXPECT_NEAR(b.pue, 1.4, 1e-12);
    EXPECT_THROW(PueCalculator(core::Watts{0.0}), core::InvalidArgument);
}

TEST(Economizer, FreeCoolingByTemperature) {
    const AirEconomizer eco;
    // Finnish winter: pure free cooling.
    EXPECT_TRUE(eco.free_cooling(core::Celsius{-10.0}));
    EXPECT_TRUE(eco.free_cooling(core::Celsius{10.0}));
    // Hot summer afternoon: compressors.
    EXPECT_FALSE(eco.free_cooling(core::Celsius{28.0}));
}

TEST(Economizer, PowerMonotoneInOutsideTemperature) {
    const AirEconomizer eco;
    const core::Watts it = core::Watts::from_kilowatts(75.0);
    double prev = 0.0;
    for (double t = -25.0; t <= 40.0; t += 1.0) {
        const double p = eco.cooling_power(it, core::Celsius{t}).value();
        EXPECT_GE(p, prev - 1e-9) << t;
        prev = p;
    }
    // Cold limit: fans only; hot limit: full mechanical.
    EXPECT_NEAR(eco.cooling_power(it, core::Celsius{-20.0}).value(), 75000.0 * 0.06, 1e-6);
    EXPECT_NEAR(eco.cooling_power(it, core::Celsius{40.0}).value(), 75000.0 * 0.36, 1e-6);
}

TEST(Economizer, Validation) {
    EconomizerConfig cfg;
    cfg.compressor_fraction = 0.01;  // below fan fraction
    EXPECT_THROW(AirEconomizer{cfg}, core::InvalidArgument);
    const AirEconomizer eco;
    EXPECT_THROW((void)eco.cooling_power(core::Watts{-1.0}, core::Celsius{0.0}),
                 core::InvalidArgument);
}

TEST(Economizer, WinterSavingsInPaperBracket) {
    // Over the experiment's season in Helsinki, savings land in (and indeed
    // above) the HP 40% .. Intel 67% bracket quoted in the introduction —
    // this climate is the best case.
    weather::WeatherModel model(weather::helsinki_2010_config(), 7);
    const auto trace =
        weather::generate_trace(model, TimePoint::from_date(2010, 2, 10),
                                TimePoint::from_date(2010, 5, 20), core::Duration::hours(1));
    const auto summary =
        compare_cooling(trace, core::Watts::from_kilowatts(75.0), AirEconomizer{});
    EXPECT_GT(summary.savings_fraction(), 0.40);
    EXPECT_GT(summary.free_cooling_hours / summary.hours, 0.95);
    EXPECT_GT(summary.conventional_energy.value(), summary.economizer_energy.value());
}

TEST(Economizer, HotClimateSavesLittle) {
    // Force a hot trace by shifting the anchors +35 degC.
    weather::WeatherConfig cfg = weather::helsinki_2010_config();
    for (auto& a : cfg.anchors) a.mean += core::Celsius{38.0};
    cfg.cold_snaps.clear();
    weather::WeatherModel model(cfg, 7);
    const auto trace =
        weather::generate_trace(model, TimePoint::from_date(2010, 2, 10),
                                TimePoint::from_date(2010, 4, 10), core::Duration::hours(1));
    const auto summary =
        compare_cooling(trace, core::Watts::from_kilowatts(75.0), AirEconomizer{});
    EXPECT_LT(summary.savings_fraction(), 0.40);
}

TEST(Economizer, TraceTooShortThrows) {
    EXPECT_THROW((void)compare_cooling({}, core::Watts{1.0}, AirEconomizer{}),
                 core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::energy
