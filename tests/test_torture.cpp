// The torture engine itself, run fast: a small synthetic sweep crashed at
// every journal write point (times every crash phase) must resume to
// byte-identical census tables for jobs 1 and 8.  This is the unit-test
// version of tools/zerodeg_torture — same engine, milliseconds per cell.
#include "experiment/torture.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "core/error.hpp"
#include "experiment/parallel_census.hpp"

namespace zerodeg::experiment {
namespace {

namespace fs = std::filesystem;

CensusPlan synthetic_plan(std::size_t seeds) {
    CensusPlan plan;
    plan.base_seed = 42;
    plan.seeds = seeds;
    plan.run_cell = [](const ExperimentConfig& cfg) { return synthetic_census(cfg); };
    return plan;
}

fs::path scratch_journal(const std::string& name) {
    fs::path p = fs::path(::testing::TempDir()) / ("torture_" + name + ".journal");
    fs::remove(p);
    fs::remove(fs::path(p.string() + ".tmp"));
    return p;
}

TEST(SyntheticCensus, IsAPureFunctionOfTheSeed) {
    ExperimentConfig cfg;
    cfg.master_seed = 1234;
    const FaultCensus a = synthetic_census(cfg);
    const FaultCensus b = synthetic_census(cfg);
    EXPECT_EQ(a.load_runs, b.load_runs);
    EXPECT_EQ(a.wrong_hashes, b.wrong_hashes);
    EXPECT_EQ(a.system_failures, b.system_failures);

    cfg.master_seed = 1235;
    const FaultCensus c = synthetic_census(cfg);
    EXPECT_TRUE(a.load_runs != c.load_runs || a.wrong_hashes != c.wrong_hashes ||
                a.page_ops != c.page_ops);
}

TEST(RenderCensusTable, HungNodeLineOnlyAppearsWithHungCells) {
    const CensusResult result = ParallelCensus(synthetic_plan(2), 1).run();
    const std::string clean = render_census_table(result, 42);
    EXPECT_NE(clean.find("seed 42:"), std::string::npos);
    EXPECT_NE(clean.find("mean fleet failure rate:"), std::string::npos);
    EXPECT_EQ(clean.find("harness hung nodes"), std::string::npos);

    CensusResult hung = result;
    hung.harness.hung_cells = 2;
    hung.harness.hung_cell_labels = {"cell 0", "cell 3"};
    const std::string reported = render_census_table(hung, 42);
    EXPECT_NE(reported.find("harness hung nodes: 2 cancelled by watchdog (cell 0, cell 3)"),
              std::string::npos);
}

/// The acceptance property, as a fast deterministic unit test: crash at
/// every write point of a 3-cell sweep, under both a serial and a saturated
/// worker pool.
class TortureSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TortureSweep, EveryCrashPointResumesByteIdentical) {
    const std::size_t jobs = GetParam();
    const fs::path journal = scratch_journal("jobs" + std::to_string(jobs));
    TortureOptions options;
    options.jobs = jobs;
    std::ostringstream log;
    const TortureReport report =
        torture_campaign(synthetic_plan(3), jobs, journal, options, log);
    EXPECT_TRUE(report.passed()) << log.str();
    EXPECT_EQ(report.mismatches, 0u) << log.str();
    EXPECT_GT(report.io_ops, 0u);
    // Four crash phases per write point, one resume per crash point.
    EXPECT_EQ(report.crash_points, report.io_ops * 4);
    EXPECT_EQ(report.resumes, report.crash_points);
    // Torn-write/torn-tail phases must actually exercise the recovery
    // machinery somewhere in the sweep, or the test is weaker than it looks.
    EXPECT_GT(report.tail_repairs + report.journal_resets, 0u) << log.str();
}

INSTANTIATE_TEST_SUITE_P(Jobs, TortureSweep, ::testing::Values<std::size_t>(1, 8),
                         [](const auto& param_info) {
                             return "jobs" + std::to_string(param_info.param);
                         });

TEST(TortureSweep, SkippingTornTailDropsToThreePhases) {
    const fs::path journal = scratch_journal("notail");
    TortureOptions options;
    options.include_torn_tail = false;
    std::ostringstream log;
    const TortureReport report = torture_campaign(synthetic_plan(2), 1, journal, options, log);
    EXPECT_TRUE(report.passed()) << log.str();
    EXPECT_EQ(report.crash_points, report.io_ops * 3);
}

}  // namespace
}  // namespace zerodeg::experiment
