// Shared helper for tests that shell out to a real binary (`zerodeg`,
// `zerodeg_lint`): runs a command line, captures combined stdout+stderr via a
// temp file, and decodes the exit status portably.  Keeping this in one place
// means every CLI suite asserts the same 0/1/2 exit-code contract the same way.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>

namespace zerodeg::test {

struct CommandResult {
    int exit_code = -1;
    std::string output;  // stdout + stderr interleaved
};

/// Run `cmd` through the shell, returning its exit code and combined output.
/// The capture file is unique per process AND per call: ctest runs each
/// discovered test as its own concurrent process, all sharing TempDir.
inline CommandResult run_command(const std::string& cmd) {
    static std::atomic<unsigned> call_count{0};
    const std::filesystem::path out_path =
        std::filesystem::path(::testing::TempDir()) /
        ("cli_test_out." + std::to_string(::getpid()) + "." +
         std::to_string(call_count.fetch_add(1)) + ".txt");
    const std::string full = cmd + " > " + out_path.string() + " 2>&1";
    const int status = std::system(full.c_str());
    CommandResult r;
#ifdef WEXITSTATUS
    r.exit_code = status < 0 ? -1 : WEXITSTATUS(status);
#else
    r.exit_code = status;
#endif
    {
        std::ifstream in(out_path);
        std::ostringstream ss;
        ss << in.rdbuf();
        r.output = ss.str();
    }
    std::error_code ec;
    std::filesystem::remove(out_path, ec);
    return r;
}

}  // namespace zerodeg::test
