#include "hardware/components.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::hardware {
namespace {

using core::Watts;

TEST(CpuTest, PowerScalesWithLoad) {
    Cpu cpu("x86", Watts{12.0}, Watts{65.0});
    EXPECT_DOUBLE_EQ(cpu.power().value(), 12.0);
    cpu.set_load(1.0);
    EXPECT_DOUBLE_EQ(cpu.power().value(), 65.0);
    cpu.set_load(0.5);
    EXPECT_DOUBLE_EQ(cpu.power().value(), 38.5);
}

TEST(CpuTest, LoadValidation) {
    Cpu cpu("x86", Watts{10.0}, Watts{50.0});
    EXPECT_THROW(cpu.set_load(-0.1), core::InvalidArgument);
    EXPECT_THROW(cpu.set_load(1.1), core::InvalidArgument);
    EXPECT_THROW(Cpu("bad", Watts{50.0}, Watts{10.0}), core::InvalidArgument);
}

TEST(HardDriveTest, FailureStopsPower) {
    HardDrive d("disk");
    EXPECT_DOUBLE_EQ(d.power().value(), 7.0);
    d.fail();
    EXPECT_TRUE(d.failed());
    EXPECT_DOUBLE_EQ(d.power().value(), 0.0);
}

std::vector<HardDrive> drives(std::size_t n) {
    std::vector<HardDrive> out;
    for (std::size_t i = 0; i < n; ++i) out.emplace_back("d");
    return out;
}

TEST(RaidTest, LayoutRequiresCorrectDriveCount) {
    EXPECT_THROW(RaidArray(RaidLayout::kNone, drives(2)), core::InvalidArgument);
    EXPECT_THROW(RaidArray(RaidLayout::kSoftwareMirror, drives(1)), core::InvalidArgument);
    EXPECT_THROW(RaidArray(RaidLayout::kMirrorPlusParity, drives(4)), core::InvalidArgument);
    EXPECT_NO_THROW(RaidArray(RaidLayout::kMirrorPlusParity, drives(5)));
}

TEST(RaidTest, SingleDrive) {
    RaidArray r(RaidLayout::kNone, drives(1));
    EXPECT_TRUE(r.data_available());
    EXPECT_TRUE(r.degraded());  // always one failure from loss
    r.drives()[0].fail();
    EXPECT_FALSE(r.data_available());
}

TEST(RaidTest, SoftwareMirrorSurvivesOneLoss) {
    RaidArray r(RaidLayout::kSoftwareMirror, drives(2));
    EXPECT_FALSE(r.degraded());
    r.drives()[0].fail();
    EXPECT_TRUE(r.data_available());
    EXPECT_TRUE(r.degraded());
    r.drives()[1].fail();
    EXPECT_FALSE(r.data_available());
    EXPECT_EQ(r.failed_drives(), 2u);
}

// Truth table for the vendor-C array: drives 0-1 mirror, 2-4 parity stripe.
struct RaidCase {
    std::array<bool, 5> failed;
    bool available;
};

class MirrorParityTruth : public ::testing::TestWithParam<RaidCase> {};

TEST_P(MirrorParityTruth, Availability) {
    const RaidCase c = GetParam();
    RaidArray r(RaidLayout::kMirrorPlusParity, drives(5));
    for (std::size_t i = 0; i < 5; ++i) {
        if (c.failed[i]) r.drives()[i].fail();
    }
    EXPECT_EQ(r.data_available(), c.available);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MirrorParityTruth,
    ::testing::Values(RaidCase{{false, false, false, false, false}, true},
                      RaidCase{{true, false, false, false, false}, true},
                      RaidCase{{true, true, false, false, false}, false},
                      RaidCase{{false, false, true, false, false}, true},
                      RaidCase{{false, false, true, true, false}, false},
                      RaidCase{{true, false, true, false, false}, true},
                      RaidCase{{false, true, false, false, true}, true},
                      RaidCase{{true, true, true, true, true}, false}));

TEST(RaidTest, PowerSumsWorkingDrives) {
    RaidArray r(RaidLayout::kMirrorPlusParity, drives(5));
    EXPECT_DOUBLE_EQ(r.power().value(), 35.0);
    r.drives()[2].fail();
    EXPECT_DOUBLE_EQ(r.power().value(), 28.0);
}

TEST(PsuTest, EfficiencyCurve) {
    PowerSupply psu(Watts{400.0}, 0.85);
    // At exactly half load, efficiency is the nominal 0.85.
    EXPECT_NEAR(psu.input_for(Watts{200.0}).value(), 200.0 / 0.85, 1e-9);
    // Away from half load the draw is relatively worse.
    EXPECT_GT(psu.input_for(Watts{40.0}).value() / 40.0,
              psu.input_for(Watts{200.0}).value() / 200.0);
    // Input always exceeds output.
    for (const double load : {10.0, 100.0, 300.0, 400.0}) {
        EXPECT_GT(psu.input_for(Watts{load}).value(), load);
    }
}

TEST(PsuTest, Validation) {
    EXPECT_THROW(PowerSupply(Watts{0.0}, 0.8), core::InvalidArgument);
    EXPECT_THROW(PowerSupply(Watts{100.0}, 0.0), core::InvalidArgument);
    EXPECT_THROW(PowerSupply(Watts{100.0}, 1.2), core::InvalidArgument);
    PowerSupply psu(Watts{100.0}, 0.8);
    EXPECT_THROW((void)psu.input_for(Watts{-1.0}), core::InvalidArgument);
}

TEST(FanTest, SeizureStopsAirflow) {
    FanUnit fan(2400);
    EXPECT_EQ(fan.rpm(), 2400);
    EXPECT_DOUBLE_EQ(fan.airflow(), 1.0);
    EXPECT_GT(fan.power().value(), 0.0);
    fan.seize();
    EXPECT_EQ(fan.rpm(), 0);
    EXPECT_DOUBLE_EQ(fan.airflow(), 0.0);
    EXPECT_DOUBLE_EQ(fan.power().value(), 0.0);
}

TEST(MemoryTest, EccFlag) {
    const MemoryModule ecc(8192, true);
    const MemoryModule plain(2048, false);
    EXPECT_TRUE(ecc.has_ecc());
    EXPECT_FALSE(plain.has_ecc());
    EXPECT_EQ(ecc.megabytes(), 8192u);
}

TEST(RaidTest, LayoutNames) {
    EXPECT_STREQ(to_string(RaidLayout::kSoftwareMirror), "Linux md RAID-1");
    EXPECT_STREQ(to_string(RaidLayout::kMirrorPlusParity), "HW mirror + parity stripe");
}

}  // namespace
}  // namespace zerodeg::hardware
