#include "faults/hazard.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::faults {
namespace {

TEST(Arrhenius, ReferenceIsUnity) {
    const ArrheniusModel m(0.5, Celsius{45.0});
    EXPECT_NEAR(m.acceleration(Celsius{45.0}), 1.0, 1e-12);
}

TEST(Arrhenius, HotAcceleratesColdDecelerates) {
    const ArrheniusModel m(0.5, Celsius{45.0});
    EXPECT_GT(m.acceleration(Celsius{65.0}), 2.0);
    // The physics behind the paper's result: cold silicon wears slower.
    EXPECT_LT(m.acceleration(Celsius{0.0}), 0.2);
    EXPECT_GT(m.acceleration(Celsius{0.0}), 0.0);
}

TEST(Arrhenius, Monotone) {
    const ArrheniusModel m(0.7, Celsius{45.0});
    double prev = 0.0;
    for (double t = -30.0; t <= 100.0; t += 5.0) {
        const double a = m.acceleration(Celsius{t});
        EXPECT_GT(a, prev);
        prev = a;
    }
    EXPECT_THROW(ArrheniusModel(0.0, Celsius{45.0}), core::InvalidArgument);
}

TEST(Peck, ReferenceIsUnity) {
    const PeckModel m(2.7, RelHumidity{50.0});
    EXPECT_NEAR(m.acceleration(RelHumidity{50.0}), 1.0, 1e-12);
    // "relative humidities above 80% or 90%" — roughly 3.6x and 4.9x at
    // n = 2.7.
    EXPECT_NEAR(m.acceleration(RelHumidity{80.0}), std::pow(1.6, 2.7), 1e-9);
    EXPECT_GT(m.acceleration(RelHumidity{90.0}), m.acceleration(RelHumidity{80.0}));
}

TEST(Peck, LowHumidityClampAvoidsZero) {
    const PeckModel m(2.7, RelHumidity{50.0});
    EXPECT_GT(m.acceleration(RelHumidity{0.0}), 0.0);
    EXPECT_THROW(PeckModel(0.0, RelHumidity{50.0}), core::InvalidArgument);
    EXPECT_THROW(PeckModel(2.7, RelHumidity{0.0}), core::InvalidArgument);
}

TEST(ColdStress, UnityAboveThreshold) {
    const ColdStressModel m(Celsius{0.0}, 0.006);
    EXPECT_DOUBLE_EQ(m.acceleration(Celsius{0.0}), 1.0);
    EXPECT_DOUBLE_EQ(m.acceleration(Celsius{21.0}), 1.0);
}

TEST(ColdStress, QuadraticBelow) {
    const ColdStressModel m(Celsius{0.0}, 0.006);
    EXPECT_NEAR(m.acceleration(Celsius{-10.0}), 1.6, 1e-9);
    EXPECT_NEAR(m.acceleration(Celsius{-22.0}), 1.0 + 0.006 * 484.0, 1e-9);
    EXPECT_THROW(ColdStressModel(Celsius{0.0}, -1.0), core::InvalidArgument);
}

TEST(Bathtub, Shape) {
    const BathtubHazard h;
    // Infant mortality: hour 0 above hour 5000.
    EXPECT_GT(h.hazard_per_hour(0.0), h.hazard_per_hour(5000.0));
    // Useful life: flat-ish mid-curve.
    EXPECT_NEAR(h.hazard_per_hour(10000.0), h.hazard_per_hour(20000.0), 2e-6);
    // Wear-out: rises past onset.
    EXPECT_GT(h.hazard_per_hour(60000.0), 2.0 * h.hazard_per_hour(10000.0));
    EXPECT_THROW((void)h.hazard_per_hour(-1.0), core::InvalidArgument);
}

TEST(HostHazard, BasementReferenceRate) {
    const HostHazardModel m;
    StressState office;
    office.intake = Celsius{21.0};
    office.humidity = RelHumidity{35.0};
    office.age_hours = 10000.0;
    const double per_hour = m.hazard_per_hour(office);
    // Near base AFR at reference conditions.
    EXPECT_NEAR(per_hour * 8766.0, m.params().base_afr, m.params().base_afr * 0.25);
}

TEST(HostHazard, TentIsWorseThanBasement) {
    const HostHazardModel m;
    StressState basement;
    basement.intake = Celsius{21.0};
    basement.humidity = RelHumidity{35.0};
    basement.age_hours = 22000.0;

    StressState tent = basement;
    tent.intake = Celsius{-15.0};
    tent.humidity = RelHumidity{85.0};
    tent.cycling_rate_k_per_h = 1.5;
    EXPECT_GT(m.hazard_per_hour(tent), m.hazard_per_hour(basement));
}

TEST(HostHazard, UnreliableSeriesMultiplier) {
    const HostHazardModel m;
    StressState s;
    s.age_hours = 22000.0;
    const double reliable = m.hazard_per_hour(s);
    s.known_unreliable = true;
    EXPECT_NEAR(m.hazard_per_hour(s) / reliable, m.params().unreliable_multiplier, 1e-9);
}

TEST(HostHazard, HumidityKneeGates) {
    const HostHazardModel m;
    StressState dry;
    dry.age_hours = 22000.0;
    dry.intake = Celsius{5.0};
    dry.humidity = RelHumidity{70.0};
    StressState damp = dry;
    damp.humidity = RelHumidity{79.0};
    // Below the knee: humidity has no effect.
    EXPECT_DOUBLE_EQ(m.hazard_per_hour(dry), m.hazard_per_hour(damp));
    StressState wet = dry;
    wet.humidity = RelHumidity{92.0};
    EXPECT_GT(m.hazard_per_hour(wet), m.hazard_per_hour(dry));
}

TEST(HostHazard, CyclingRaisesHazard) {
    const HostHazardModel m;
    StressState calm;
    calm.age_hours = 22000.0;
    StressState swinging = calm;
    swinging.cycling_rate_k_per_h = 2.0;
    EXPECT_NEAR(m.hazard_per_hour(swinging) / m.hazard_per_hour(calm),
                1.0 + m.params().cycling_coeff_per_k_per_h * 2.0, 1e-9);
}

// Property: hazard is positive and finite across the whole operating
// envelope the experiment visits.
struct Envelope {
    double intake;
    double rh;
    double cycling;
};

class HazardEnvelope : public ::testing::TestWithParam<Envelope> {};

TEST_P(HazardEnvelope, PositiveFinite) {
    const Envelope e = GetParam();
    const HostHazardModel m;
    StressState s;
    s.intake = Celsius{e.intake};
    s.humidity = RelHumidity{e.rh};
    s.cycling_rate_k_per_h = e.cycling;
    s.age_hours = 22000.0;
    const double h = m.hazard_per_hour(s);
    EXPECT_GT(h, 0.0);
    EXPECT_LT(h, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HazardEnvelope,
                         ::testing::Values(Envelope{-25.0, 95.0, 5.0}, Envelope{-10.0, 85.0, 2.0},
                                           Envelope{0.0, 60.0, 1.0}, Envelope{21.0, 35.0, 0.0},
                                           Envelope{35.0, 99.0, 0.5}));

}  // namespace
}  // namespace zerodeg::faults
