#include "core/timeseries.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::core {
namespace {

TimePoint at(std::int64_t s) { return TimePoint{s}; }

TimeSeries make(std::initializer_list<std::pair<std::int64_t, double>> pts) {
    TimeSeries s("test");
    for (const auto& [t, v] : pts) s.append(at(t), v);
    return s;
}

TEST(TimeSeries, AppendAndAccess) {
    TimeSeries s = make({{0, 1.0}, {10, 2.0}});
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.front().value, 1.0);
    EXPECT_EQ(s.back().value, 2.0);
    EXPECT_EQ(s[1].time, at(10));
}

TEST(TimeSeries, RejectsOutOfOrder) {
    TimeSeries s = make({{10, 1.0}});
    EXPECT_THROW(s.append(at(5), 2.0), InvalidArgument);
    EXPECT_NO_THROW(s.append(at(10), 3.0));  // equal timestamps allowed
}

TEST(TimeSeries, InterpolateExactAndBetween) {
    TimeSeries s = make({{0, 0.0}, {10, 10.0}});
    EXPECT_DOUBLE_EQ(*s.interpolate(at(0)), 0.0);
    EXPECT_DOUBLE_EQ(*s.interpolate(at(10)), 10.0);
    EXPECT_DOUBLE_EQ(*s.interpolate(at(5)), 5.0);
    EXPECT_DOUBLE_EQ(*s.interpolate(at(7)), 7.0);
}

TEST(TimeSeries, InterpolateOutsideIsNull) {
    TimeSeries s = make({{10, 1.0}, {20, 2.0}});
    EXPECT_FALSE(s.interpolate(at(9)).has_value());
    EXPECT_FALSE(s.interpolate(at(21)).has_value());
    EXPECT_FALSE(TimeSeries{}.interpolate(at(0)).has_value());
}

TEST(TimeSeries, ValueAtOrBefore) {
    TimeSeries s = make({{0, 1.0}, {10, 2.0}, {20, 3.0}});
    EXPECT_FALSE(s.value_at_or_before(at(-1)).has_value());
    EXPECT_DOUBLE_EQ(*s.value_at_or_before(at(0)), 1.0);
    EXPECT_DOUBLE_EQ(*s.value_at_or_before(at(15)), 2.0);
    EXPECT_DOUBLE_EQ(*s.value_at_or_before(at(100)), 3.0);
}

TEST(TimeSeries, Stats) {
    TimeSeries s = make({{0, -10.2}, {10, -9.0}, {20, -8.4}});
    const SeriesStats st = s.stats();
    EXPECT_EQ(st.count, 3u);
    EXPECT_DOUBLE_EQ(st.min, -10.2);
    EXPECT_DOUBLE_EQ(st.max, -8.4);
    EXPECT_NEAR(st.mean, -9.2, 1e-9);
}

TEST(TimeSeries, StatsBetween) {
    TimeSeries s = make({{0, 1.0}, {10, 100.0}, {20, 3.0}});
    const SeriesStats st = s.stats_between(at(5), at(15));
    EXPECT_EQ(st.count, 1u);
    EXPECT_DOUBLE_EQ(st.mean, 100.0);
}

TEST(TimeSeries, EmptyStats) {
    const SeriesStats st = TimeSeries{}.stats();
    EXPECT_EQ(st.count, 0u);
}

TEST(TimeSeries, Resample) {
    TimeSeries s = make({{0, 0.0}, {100, 100.0}});
    const TimeSeries r = s.resample(at(0), at(100), Duration::seconds(25));
    ASSERT_EQ(r.size(), 5u);
    EXPECT_DOUBLE_EQ(r[1].value, 25.0);
    EXPECT_DOUBLE_EQ(r[4].value, 100.0);
}

TEST(TimeSeries, ResampleSkipsUncovered) {
    TimeSeries s = make({{50, 1.0}, {60, 2.0}});
    const TimeSeries r = s.resample(at(0), at(100), Duration::seconds(10));
    EXPECT_EQ(r.size(), 2u);  // only t=50 and t=60 are inside coverage
}

TEST(TimeSeries, ResampleBadStepThrows) {
    TimeSeries s = make({{0, 0.0}, {10, 1.0}});
    EXPECT_THROW(s.resample(at(0), at(10), Duration::seconds(0)), InvalidArgument);
}

TEST(TimeSeries, Slice) {
    TimeSeries s = make({{0, 1.0}, {10, 2.0}, {20, 3.0}, {30, 4.0}});
    const TimeSeries sl = s.slice(at(10), at(20));
    ASSERT_EQ(sl.size(), 2u);
    EXPECT_DOUBLE_EQ(sl[0].value, 2.0);
    EXPECT_DOUBLE_EQ(sl[1].value, 3.0);
}

TEST(TimeSeries, RemoveIf) {
    TimeSeries s = make({{0, 1.0}, {10, 99.0}, {20, 2.0}, {30, 98.0}});
    const std::size_t removed = s.remove_if([](const Sample& x) { return x.value > 50.0; });
    EXPECT_EQ(removed, 2u);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[1].value, 2.0);
}

TEST(TimeSeries, Transform) {
    TimeSeries s = make({{0, 1.0}, {10, 2.0}});
    s.transform([](double v) { return v * 10.0; });
    EXPECT_DOUBLE_EQ(s[0].value, 10.0);
    EXPECT_DOUBLE_EQ(s[1].value, 20.0);
}

TEST(TimeSeries, DailyAggregates) {
    TimeSeries s("t");
    // Day 0: values 1, 3; day 1: values 10, 20.
    s.append(at(100), 1.0);
    s.append(at(200), 3.0);
    s.append(at(86400 + 100), 10.0);
    s.append(at(86400 + 200), 20.0);

    const TimeSeries mins = s.daily(TimeSeries::DailyReduce::kMin);
    const TimeSeries maxs = s.daily(TimeSeries::DailyReduce::kMax);
    const TimeSeries means = s.daily(TimeSeries::DailyReduce::kMean);
    ASSERT_EQ(mins.size(), 2u);
    EXPECT_DOUBLE_EQ(mins[0].value, 1.0);
    EXPECT_DOUBLE_EQ(maxs[0].value, 3.0);
    EXPECT_DOUBLE_EQ(means[1].value, 15.0);
    EXPECT_EQ(mins[0].time, at(0));
    EXPECT_EQ(mins[1].time, at(86400));
}

}  // namespace
}  // namespace zerodeg::core
