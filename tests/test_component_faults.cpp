#include "faults/component_faults.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::faults {
namespace {

using core::Duration;
using core::RngStream;

ComponentFaultProcess make(int fans = 2, int disks = 2, ComponentFaultParams p = {},
                           std::uint64_t seed = 1) {
    return ComponentFaultProcess(1, fans, disks, p, RngStream(seed, "cf"));
}

TEST(ComponentFaults, QuietAtPaperRatesOverOneSeason) {
    // At the default (low) rates, a single host over ~5 weeks usually sees
    // nothing — consistent with the paper reporting no fan/disk deaths.
    int total_events = 0;
    for (int seed = 0; seed < 50; ++seed) {
        auto p = make(2, 2, {}, static_cast<std::uint64_t>(seed));
        for (int i = 0; i < 6 * 24 * 36; ++i) {
            total_events += static_cast<int>(
                p.advance(Duration::minutes(10), Celsius{-5.0}, Celsius{5.0},
                          RelHumidity{75.0})
                    .size());
        }
    }
    // 50 host-seasons: a handful of events at most.
    EXPECT_LT(total_events, 25);
}

TEST(ComponentFaults, FansEventuallySeize) {
    ComponentFaultParams p;
    p.fan_afr = 50.0;  // accelerate for the test
    auto proc = make(3, 0, p);
    std::vector<ComponentEvent> all;
    for (int i = 0; i < 24 * 365 && proc.live_fans() > 0; ++i) {
        const auto ev = proc.advance(Duration::hours(1), Celsius{20.0}, Celsius{25.0},
                                     RelHumidity{40.0});
        all.insert(all.end(), ev.begin(), ev.end());
    }
    EXPECT_EQ(proc.live_fans(), 0);
    int seized = 0;
    for (const auto& e : all) seized += e.kind == ComponentEventKind::kFanSeized;
    EXPECT_EQ(seized, 3);
    // A dead fan never fires again.
    for (const auto& e : all) {
        EXPECT_GE(e.component_index, 0);
        EXPECT_LT(e.component_index, 3);
    }
}

TEST(ComponentFaults, ColdAcceleratesFans) {
    ComponentFaultParams p;
    p.fan_afr = 5.0;
    int cold_seizures = 0, warm_seizures = 0;
    for (int seed = 0; seed < 60; ++seed) {
        auto cold = make(2, 0, p, static_cast<std::uint64_t>(seed));
        auto warm = make(2, 0, p, static_cast<std::uint64_t>(seed));
        for (int i = 0; i < 24 * 60; ++i) {
            cold_seizures += static_cast<int>(
                cold.advance(Duration::hours(1), Celsius{-20.0}, Celsius{-10.0},
                             RelHumidity{70.0})
                    .size());
            warm_seizures += static_cast<int>(
                warm.advance(Duration::hours(1), Celsius{21.0}, Celsius{30.0},
                             RelHumidity{40.0})
                    .size());
        }
    }
    EXPECT_GT(cold_seizures, warm_seizures);
}

TEST(ComponentFaults, DiskTemperatureBathtub) {
    ComponentFaultParams p;
    p.disk_afr = 5.0;
    p.media_events_per_year = 0.0;
    const auto count_failures = [&p](double hdd_temp) {
        int failures = 0;
        for (int seed = 0; seed < 60; ++seed) {
            auto proc = make(0, 2, p, static_cast<std::uint64_t>(seed));
            for (int i = 0; i < 24 * 90; ++i) {
                failures += static_cast<int>(proc.advance(Duration::hours(1), Celsius{20.0},
                                                          Celsius{hdd_temp},
                                                          RelHumidity{50.0})
                                                 .size());
            }
        }
        return failures;
    };
    const int sweet = count_failures(28.0);
    const int frozen = count_failures(-10.0);
    const int baking = count_failures(55.0);
    EXPECT_GT(frozen, sweet);
    EXPECT_GT(baking, sweet);
}

TEST(ComponentFaults, HumidityDrivesMediaEvents) {
    ComponentFaultParams p;
    p.media_events_per_year = 20.0;
    p.disk_afr = 0.0;
    p.fan_afr = 0.0;
    int humid_events = 0, dry_events = 0;
    for (int seed = 0; seed < 30; ++seed) {
        auto humid = make(0, 1, p, static_cast<std::uint64_t>(seed));
        auto dry = make(0, 1, p, static_cast<std::uint64_t>(seed));
        for (int i = 0; i < 24 * 60; ++i) {
            humid_events += static_cast<int>(humid
                                                 .advance(Duration::hours(1), Celsius{5.0},
                                                          Celsius{10.0}, RelHumidity{92.0})
                                                 .size());
            dry_events += static_cast<int>(dry.advance(Duration::hours(1), Celsius{5.0},
                                                       Celsius{10.0}, RelHumidity{40.0})
                                               .size());
        }
    }
    EXPECT_GT(humid_events, dry_events);
}

TEST(ComponentFaults, MediaEventsRenewAndCarrySectors) {
    ComponentFaultParams p;
    p.media_events_per_year = 500.0;
    p.disk_afr = 0.0;
    p.fan_afr = 0.0;
    auto proc = make(0, 1, p);
    int events = 0;
    for (int i = 0; i < 24 * 30; ++i) {
        for (const auto& e :
             proc.advance(Duration::hours(1), Celsius{5.0}, Celsius{10.0}, RelHumidity{85.0})) {
            EXPECT_EQ(e.kind, ComponentEventKind::kDiskMediaError);
            EXPECT_GE(e.detail, 1);
            EXPECT_LE(e.detail, p.media_max_sectors);
            ++events;
        }
    }
    EXPECT_GT(events, 3);  // renewing: fires repeatedly on the same drive
    EXPECT_EQ(proc.live_disks(), 1);
}

TEST(ComponentFaults, Validation) {
    EXPECT_THROW(make(-1, 0), core::InvalidArgument);
    auto proc = make();
    EXPECT_THROW((void)proc.advance(Duration::seconds(-1), Celsius{0.0}, Celsius{0.0},
                                    RelHumidity{50.0}),
                 core::InvalidArgument);
}

TEST(ComponentFaults, EventNames) {
    EXPECT_STREQ(to_string(ComponentEventKind::kFanSeized), "fan seized");
    EXPECT_STREQ(to_string(ComponentEventKind::kDiskMediaError), "disk media error");
}

}  // namespace
}  // namespace zerodeg::faults
