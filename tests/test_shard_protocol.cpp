// The zdsp1 wire protocol: every frame type round-trips, every kind of
// damage — checksum flips, foreign magic, truncation, trailing junk, a
// tampered embedded cell record — fails loudly as CorruptData before any
// field is trusted.
#include "experiment/shard_protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "experiment/sweep_journal.hpp"
#include "experiment/torture.hpp"

namespace zerodeg::experiment {
namespace {

SweepJournalKey sample_key() {
    SweepJournalKey key;
    key.base_seed = 20100219;
    key.config_hash = 0xdeadbeefcafef00dULL;
    key.cells = 12;
    return key;
}

FaultCensus sample_census(std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.master_seed = seed;
    return synthetic_census(cfg);
}

TEST(ShardProtocol, HelloRoundTrips) {
    const ShardHello hello{sample_key(), 3, 5};
    const Frame frame = decode_frame(encode_hello(hello));
    ASSERT_EQ(frame.type, FrameType::kHello);
    EXPECT_EQ(frame.hello.key, sample_key());
    EXPECT_EQ(frame.hello.shard, 3u);
    EXPECT_EQ(frame.hello.of, 5u);
}

TEST(ShardProtocol, WelcomeRejectAckRoundTrip) {
    Frame frame = decode_frame(encode_welcome(7));
    ASSERT_EQ(frame.type, FrameType::kWelcome);
    EXPECT_EQ(frame.completed, 7u);

    frame = decode_frame(encode_reject("campaign mismatch: wrong base seed"));
    ASSERT_EQ(frame.type, FrameType::kReject);
    EXPECT_EQ(frame.reason, "campaign mismatch: wrong base seed");

    frame = decode_frame(encode_ack(11));
    ASSERT_EQ(frame.type, FrameType::kAck);
    EXPECT_EQ(frame.ack_index, 11u);
}

TEST(ShardProtocol, CellEmbedsTheJournalRecordVerbatim) {
    const FaultCensus census = sample_census(99);
    const std::string wire = encode_cell(4, census);
    // Bit-for-bit: the coordinator can persist exactly what a local run would.
    EXPECT_NE(wire.find(encode_cell_record(4, census)), std::string::npos);

    const Frame frame = decode_frame(wire);
    ASSERT_EQ(frame.type, FrameType::kCell);
    EXPECT_EQ(frame.cell.index, 4u);
    EXPECT_EQ(frame.cell.census.load_runs, census.load_runs);
    EXPECT_EQ(frame.cell.census.wrong_hashes, census.wrong_hashes);
    EXPECT_EQ(frame.cell.census.system_failures, census.system_failures);
    // Strongest check: re-encoding the decoded record reproduces the frame.
    EXPECT_EQ(encode_cell(frame.cell.index, frame.cell.census), wire);
}

TEST(ShardProtocol, LeaseRoundTrips) {
    Lease lease;
    lease.id = 42;
    lease.deadline_ops = 512;
    lease.cells = {3, 4, 9};
    const Frame frame = decode_frame(encode_lease(lease));
    ASSERT_EQ(frame.type, FrameType::kLease);
    EXPECT_EQ(frame.lease.id, 42u);
    EXPECT_EQ(frame.lease.deadline_ops, 512u);
    EXPECT_EQ(frame.lease.cells, (std::vector<std::size_t>{3, 4, 9}));
}

TEST(ShardProtocol, HeartbeatProgressDoneRoundTrip) {
    Frame frame = decode_frame(encode_heartbeat(kNoLease));
    ASSERT_EQ(frame.type, FrameType::kHeartbeat);
    EXPECT_EQ(frame.lease_id, kNoLease);  // the pull request

    frame = decode_frame(encode_heartbeat(7));
    ASSERT_EQ(frame.type, FrameType::kHeartbeat);
    EXPECT_EQ(frame.lease_id, 7u);  // in-lease liveness

    frame = decode_frame(encode_progress(7, 2, 5));
    ASSERT_EQ(frame.type, FrameType::kProgress);
    EXPECT_EQ(frame.lease_id, 7u);
    EXPECT_EQ(frame.progress_done, 2u);
    EXPECT_EQ(frame.progress_of, 5u);

    frame = decode_frame(encode_done(10, 2));
    ASSERT_EQ(frame.type, FrameType::kDone);
    EXPECT_EQ(frame.completed, 10u);
    EXPECT_EQ(frame.quarantined, 2u);
}

TEST(ShardProtocol, LeaseValidation) {
    EXPECT_THROW((void)encode_lease(Lease{}), core::InvalidArgument);  // no cells
    const auto reseal = [](const std::string& payload) {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(core::fnv1a(payload)));
        return payload + ' ' + buf;
    };
    // Cells must be strictly ascending; the count must match and be > 0.
    EXPECT_THROW((void)decode_frame(reseal("zdsp1 lease 1 64 2 5 5")), core::CorruptData);
    EXPECT_THROW((void)decode_frame(reseal("zdsp1 lease 1 64 2 5 3")), core::CorruptData);
    EXPECT_THROW((void)decode_frame(reseal("zdsp1 lease 1 64 0")), core::CorruptData);
    // A progress frame cannot claim more done than granted.
    EXPECT_THROW((void)decode_frame(reseal("zdsp1 progress 1 6 5")), core::CorruptData);
}

TEST(ShardProtocol, AnySingleCharacterFlipIsCaughtForEveryFrameKind) {
    Lease lease;
    lease.id = 8;
    lease.deadline_ops = 128;
    lease.cells = {0, 2};
    const std::string frames[] = {
        encode_hello(ShardHello{sample_key(), 1, 2}),
        encode_welcome(3),
        encode_reject("campaign mismatch"),
        encode_cell(4, sample_census(99)),
        encode_ack(3),
        encode_lease(lease),
        encode_heartbeat(kNoLease),
        encode_heartbeat(8),
        encode_progress(8, 1, 2),
        encode_done(12, 1),
    };
    for (const std::string& wire : frames) {
        for (std::size_t i = 0; i < wire.size(); ++i) {
            std::string bent = wire;
            bent[i] = bent[i] == 'x' ? 'y' : 'x';
            if (bent == wire) continue;  // flip was a no-op
            EXPECT_THROW((void)decode_frame(bent), core::CorruptData)
                << "flip at offset " << i << " of '" << wire << "'";
        }
    }
}

TEST(ShardProtocol, ForeignMagicAndUnknownTypeAreRejected) {
    // Valid checksums over a payload speaking the wrong protocol.
    const auto reseal = [](const std::string& payload) {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(core::fnv1a(payload)));
        return payload + ' ' + buf;
    };
    EXPECT_THROW((void)decode_frame(reseal("zdsp2 ack 3")), core::CorruptData);
    EXPECT_THROW((void)decode_frame(reseal("zdsp1 goodbye 3")), core::CorruptData);
    EXPECT_THROW((void)decode_frame(reseal("zdsp1 ack 3 junk")), core::CorruptData);
    EXPECT_THROW((void)decode_frame(reseal("zdsp1 ack")), core::CorruptData);
    EXPECT_THROW((void)decode_frame("no checksum here"), core::CorruptData);
}

TEST(ShardProtocol, HelloNamingAnImpossibleShardIsRejected) {
    const auto reseal = [](const std::string& payload) {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(core::fnv1a(payload)));
        return payload + ' ' + buf;
    };
    // shard >= of is impossible for a static shard...
    EXPECT_THROW((void)decode_frame(reseal("zdsp1 hello 1 0000000000000001 4 5 5")),
                 core::CorruptData);
    // ...but of == 0 is the lease-mode spelling (shard is just a label).
    const Frame lease_mode = decode_frame(reseal("zdsp1 hello 1 0000000000000001 4 0 0"));
    ASSERT_EQ(lease_mode.type, FrameType::kHello);
    EXPECT_EQ(lease_mode.hello.of, 0u);
}

TEST(ShardProtocol, TamperedEmbeddedCellRecordIsCaughtByTheInnerChecksum) {
    const std::string record = encode_cell_record(2, sample_census(7));
    // Forge an outer-valid frame around a record whose own checksum is bent.
    std::string bent_record = record;
    bent_record[bent_record.size() - 1] = bent_record.back() == '0' ? '1' : '0';
    const std::string payload = "zdsp1 cell " + bent_record;
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(core::fnv1a(payload)));
    const std::string forged = payload + ' ' + buf;
    EXPECT_THROW((void)decode_frame(forged), core::CorruptData);
}

TEST(CellRecordCodec, RoundTripsAndEnforcesTheCellLimit) {
    const FaultCensus census = sample_census(123);
    const std::string line = encode_cell_record(9, census);
    const CellRecord rec = decode_cell_record(line);
    EXPECT_EQ(rec.index, 9u);
    EXPECT_EQ(encode_cell_record(rec.index, rec.census), line);

    EXPECT_NO_THROW((void)decode_cell_record(line, 10));  // 9 < 10: in range
    EXPECT_THROW((void)decode_cell_record(line, 9), core::CorruptData);
}

}  // namespace
}  // namespace zerodeg::experiment
