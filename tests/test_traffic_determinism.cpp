// Determinism claims of the traffic workload: the request stream derives
// from the master seed's named RNG streams alone, so (a) the per-object and
// batched tick engines see byte-identical traffic, (b) sharding a traffic
// census over any worker count is unobservable in the results, and (c) two
// runs of the same season agree to the last bit, down to the rendered SLO
// CSV.  Labelled `parallel` for the TSan gate and `traffic` so the workload
// suites can be selected together.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "experiment/census.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/runner.hpp"
#include "workload/slo.hpp"

namespace zerodeg::experiment {
namespace {

using core::Duration;
using core::TimePoint;

/// A short traffic season: five days over the six-host early fleet, with a
/// flash crowd inside the window so the bursty path is exercised too.
ExperimentConfig traffic_config(std::uint64_t seed, TickEngine engine,
                                bool clone = false,
                                workload::TrafficConfig::Mode mode =
                                    workload::TrafficConfig::Mode::kOpen) {
    ExperimentConfig cfg;
    cfg.master_seed = seed;
    cfg.end = TimePoint::from_date(2010, 2, 24);
    cfg.engine = engine;
    cfg.workload = WorkloadKind::kTraffic;
    cfg.traffic.mode = mode;
    cfg.traffic.open.flash_crowds = {
        {TimePoint::from_civil({2010, 2, 20, 18, 0, 0}), Duration::hours(2), 3.0}};
    cfg.traffic.clone_across_split = clone;
    return cfg;
}

void expect_census_identical(const FaultCensus& a, const FaultCensus& b) {
    EXPECT_EQ(a.tent_hosts_failed, b.tent_hosts_failed);
    EXPECT_EQ(a.basement_hosts_failed, b.basement_hosts_failed);
    EXPECT_EQ(a.system_failures, b.system_failures);
    EXPECT_EQ(a.sensor_incidents, b.sensor_incidents);
    EXPECT_EQ(a.switch_failures, b.switch_failures);
    EXPECT_EQ(a.fan_faults, b.fan_faults);
    EXPECT_EQ(a.disk_faults, b.disk_faults);
    EXPECT_EQ(a.requests_completed, b.requests_completed);
    EXPECT_EQ(a.requests_dropped, b.requests_dropped);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    EXPECT_EQ(a.p99_sojourn_us, b.p99_sojourn_us);
}

/// Run a season and capture everything determinism-relevant as one string:
/// the rendered SLO CSV pins every per-tick percentile bit.
struct SeasonResult {
    FaultCensus census;
    std::string slo_csv;
    std::uint64_t requests_issued = 0;
    std::uint64_t clones_cancelled = 0;
};

SeasonResult run_season(const ExperimentConfig& cfg) {
    ExperimentRunner run(cfg);
    run.run();
    SeasonResult r;
    r.census = take_census(run);
    r.slo_csv = workload::render_slo_csv(run.traffic().slo());
    r.requests_issued = run.traffic().requests_issued();
    r.clones_cancelled = run.traffic().clones_cancelled();
    return r;
}

class TrafficEngineParity : public ::testing::TestWithParam<bool> {};

TEST_P(TrafficEngineParity, BatchedSeasonMatchesPerObjectByteForByte) {
    const bool clone = GetParam();
    const SeasonResult a = run_season(traffic_config(5551212, TickEngine::kPerObject, clone));
    const SeasonResult b = run_season(traffic_config(5551212, TickEngine::kBatched, clone));

    ASSERT_GT(a.census.requests_completed, 0u);
    expect_census_identical(a.census, b.census);
    EXPECT_EQ(a.requests_issued, b.requests_issued);
    EXPECT_EQ(a.clones_cancelled, b.clones_cancelled);
    // Byte-identical CSV: every p50/p95/p99 and utilization of every tick.
    EXPECT_EQ(a.slo_csv, b.slo_csv);
}

INSTANTIATE_TEST_SUITE_P(Clone, TrafficEngineParity, ::testing::Bool(),
                         [](const auto& param_info) {
                             return param_info.param ? "cloned" : "single";
                         });

TEST(TrafficEngineParity, ClosedLoopSeasonMatchesAcrossEngines) {
    const auto mode = workload::TrafficConfig::Mode::kClosed;
    const SeasonResult a =
        run_season(traffic_config(777, TickEngine::kPerObject, false, mode));
    const SeasonResult b = run_season(traffic_config(777, TickEngine::kBatched, false, mode));
    ASSERT_GT(a.census.requests_completed, 0u);
    expect_census_identical(a.census, b.census);
    EXPECT_EQ(a.slo_csv, b.slo_csv);
}

TEST(TrafficDeterminism, RepeatedSeasonsAgreeBitForBit) {
    const SeasonResult a = run_season(traffic_config(31415, TickEngine::kBatched, true));
    const SeasonResult b = run_season(traffic_config(31415, TickEngine::kBatched, true));
    expect_census_identical(a.census, b.census);
    EXPECT_EQ(a.slo_csv, b.slo_csv);
}

// --- parallel sharding ------------------------------------------------------

constexpr std::uint64_t kBaseSeed = 60321;
constexpr std::size_t kSeeds = 4;

CensusPlan traffic_plan() {
    CensusPlan plan;
    plan.base_seed = kBaseSeed;
    plan.seeds = kSeeds;
    plan.make_config = [](std::size_t /*index*/, std::uint64_t seed) {
        return traffic_config(seed, TickEngine::kBatched);
    };
    return plan;
}

const CensusResult& serial_reference() {
    static const CensusResult reference = [] {
        CensusResult r;
        for (std::size_t i = 0; i < kSeeds; ++i) {
            ExperimentConfig cfg = traffic_config(kBaseSeed + i, TickEngine::kBatched);
            ExperimentRunner run(cfg);
            run.run();
            r.censuses.push_back(take_census(run));
        }
        r.summary = summarize(r.censuses);
        return r;
    }();
    return reference;
}

void expect_bitwise(double a, double b, const char* what) {
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
        << what << ": " << a << " vs " << b << " differ in bits";
}

class TrafficParallelCensus : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrafficParallelCensus, ShardingIsUnobservable) {
    const std::size_t jobs = GetParam();
    const CensusResult parallel = ParallelCensus(traffic_plan(), jobs).run();
    const CensusResult& serial = serial_reference();

    ASSERT_EQ(parallel.censuses.size(), serial.censuses.size());
    for (std::size_t i = 0; i < kSeeds; ++i) {
        SCOPED_TRACE("seed index " + std::to_string(i));
        ASSERT_GT(serial.censuses[i].requests_completed, 0u);
        expect_census_identical(parallel.censuses[i], serial.censuses[i]);
    }
    expect_bitwise(parallel.summary.mean_requests_completed,
                   serial.summary.mean_requests_completed, "mean_requests_completed");
    expect_bitwise(parallel.summary.mean_deadline_miss_fraction,
                   serial.summary.mean_deadline_miss_fraction, "mean_deadline_miss_fraction");
}

INSTANTIATE_TEST_SUITE_P(Jobs, TrafficParallelCensus,
                         ::testing::Values<std::size_t>(1, 4, 8),
                         [](const auto& param_info) {
                             return "jobs" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace zerodeg::experiment
