#include "hardware/sensor_chip.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::hardware {
namespace {

using core::Celsius;
using core::Duration;
using core::RngStream;

SensorChip make_chip(std::uint64_t seed = 1, SensorChipConfig cfg = {}) {
    return SensorChip(cfg, RngStream(seed, "chip"));
}

TEST(SensorChip, HealthyReadsNearTruth) {
    SensorChip chip = make_chip();
    for (int i = 0; i < 100; ++i) {
        const auto r = chip.read(Celsius{35.0});
        ASSERT_TRUE(r.has_value());
        EXPECT_NEAR(r->value(), 35.0, 3.0);  // 6 sigma
    }
}

TEST(SensorChip, TracksColdestReading) {
    SensorChip chip = make_chip();
    (void)chip.read(Celsius{10.0});
    (void)chip.read(Celsius{-4.0});
    (void)chip.read(Celsius{0.0});
    ASSERT_TRUE(chip.coldest_reported().has_value());
    EXPECT_NEAR(chip.coldest_reported()->value(), -4.0, 3.0);
}

TEST(SensorChip, WarmOperationNeverGlitches) {
    SensorChip chip = make_chip();
    for (int i = 0; i < 10000; ++i) chip.step(Duration::minutes(10), Celsius{30.0});
    EXPECT_EQ(chip.state(), SensorChipState::kHealthy);
    EXPECT_DOUBLE_EQ(chip.cold_exposure_hours(), 0.0);
}

TEST(SensorChip, ColdExposureEventuallyGlitches) {
    // Drive far past the mean exposure budget: must go erratic.
    SensorChip chip = make_chip(3);
    for (int i = 0; i < 12 * 24 * 90 && chip.state() == SensorChipState::kHealthy; ++i) {
        chip.step(Duration::minutes(10), Celsius{-10.0});
    }
    EXPECT_EQ(chip.state(), SensorChipState::kErratic);
    EXPECT_GT(chip.cold_exposure_hours(), 0.0);
}

TEST(SensorChip, ErraticReportsMinus111) {
    SensorChip chip = make_chip(3);
    while (chip.state() == SensorChipState::kHealthy) {
        chip.step(Duration::hours(1), Celsius{-10.0});
    }
    const auto r = chip.read(Celsius{-5.0});
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(r->value(), -111.0);  // the paper's exact garbage value
}

TEST(SensorChip, RedetectKnocksErraticChipOffBus) {
    SensorChip chip = make_chip(3);
    while (chip.state() == SensorChipState::kHealthy) {
        chip.step(Duration::hours(1), Celsius{-10.0});
    }
    chip.attempt_redetect();
    EXPECT_EQ(chip.state(), SensorChipState::kUndetected);
    EXPECT_FALSE(chip.read(Celsius{0.0}).has_value());
}

TEST(SensorChip, RedetectHarmlessWhenHealthy) {
    SensorChip chip = make_chip();
    chip.attempt_redetect();
    EXPECT_EQ(chip.state(), SensorChipState::kHealthy);
    EXPECT_TRUE(chip.read(Celsius{20.0}).has_value());
}

TEST(SensorChip, WarmRebootRestores) {
    // The paper's full arc: erratic -> redetect -> undetected -> a week
    // later a warm reboot brings it back, and "no further problems".
    SensorChip chip = make_chip(3);
    while (chip.state() == SensorChipState::kHealthy) {
        chip.step(Duration::hours(1), Celsius{-10.0});
    }
    chip.attempt_redetect();
    ASSERT_EQ(chip.state(), SensorChipState::kUndetected);
    chip.warm_reboot();
    EXPECT_EQ(chip.state(), SensorChipState::kHealthy);
    const auto r = chip.read(Celsius{5.0});
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->value(), 5.0, 3.0);
}

TEST(SensorChip, NegativeDtThrows) {
    SensorChip chip = make_chip();
    EXPECT_THROW(chip.step(Duration::seconds(-1), Celsius{0.0}), core::InvalidArgument);
}

TEST(SensorChip, ExposureOnlyAccruesBelowThreshold) {
    SensorChipConfig cfg;
    cfg.cold_threshold = Celsius{-2.0};
    SensorChip chip(cfg, RngStream(1, "chip"));
    chip.step(Duration::hours(5), Celsius{-1.0});
    EXPECT_DOUBLE_EQ(chip.cold_exposure_hours(), 0.0);
    chip.step(Duration::hours(5), Celsius{-3.0});
    EXPECT_DOUBLE_EQ(chip.cold_exposure_hours(), 5.0);
}

}  // namespace
}  // namespace zerodeg::hardware
