// core::Watchdog: the harness-level answer to the paper's hung machines.
// A cell that outlives its deadline must be detected, cancelled
// cooperatively, charged against its retry budget, and reported as a hung
// node — never silently wedge the sweep.
#include "core/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "core/error.hpp"
#include "core/io.hpp"
#include "experiment/parallel_census.hpp"
#include "experiment/torture.hpp"

namespace zerodeg::core {
namespace {

/// Poll `done` every ~1ms for up to ~5s; returns whether it came true.
template <typename Pred>
bool eventually(Pred done) {
    for (int i = 0; i < 5000; ++i) {
        if (done()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

TEST(CancelToken, SharedFlagAndCooperativeThrow) {
    const CancelToken token;
    const CancelToken copy = token;
    EXPECT_FALSE(token.cancelled());
    token.throw_if_cancelled("no-op while live");

    copy.cancel();
    EXPECT_TRUE(token.cancelled());
    try {
        token.throw_if_cancelled("cell 3 overran");
        FAIL() << "expected TransientError";
    } catch (const TransientError& e) {
        EXPECT_NE(std::string(e.what()).find("cell 3 overran"), std::string::npos);
    }
}

TEST(ScopedCellToken, InstallsAndRestoresTheThreadLocalToken) {
    EXPECT_EQ(current_cell_token(), nullptr);
    CancelToken outer;
    {
        ScopedCellToken outer_scope(outer);
        ASSERT_NE(current_cell_token(), nullptr);
        EXPECT_FALSE(current_cell_token()->cancelled());
        {
            CancelToken inner;
            ScopedCellToken inner_scope(inner);
            inner.cancel();
            EXPECT_TRUE(current_cell_token()->cancelled());
        }
        // Back to the outer (uncancelled) token — nesting restores, so a
        // retried cell never sees its predecessor's cancelled token.
        EXPECT_FALSE(current_cell_token()->cancelled());
    }
    EXPECT_EQ(current_cell_token(), nullptr);
}

TEST(Watchdog, RejectsNonPositiveDeadline) {
    EXPECT_THROW(Watchdog(0), InvalidArgument);
    EXPECT_THROW(Watchdog(-5), InvalidArgument);
}

TEST(Watchdog, CancelsAScopeThatOutlivesTheDeadline) {
    Watchdog dog(40);
    const Watchdog::Scope scope = dog.watch("cell 7");
    EXPECT_TRUE(eventually([&scope] { return scope.token().cancelled(); }));
    EXPECT_EQ(dog.hung_count(), 1u);
    ASSERT_EQ(dog.hung_labels().size(), 1u);
    EXPECT_EQ(dog.hung_labels()[0], "cell 7");
}

TEST(Watchdog, LeavesFastWorkAlone) {
    Watchdog dog(60);
    {
        const Watchdog::Scope scope = dog.watch("quick cell");
        EXPECT_FALSE(scope.token().cancelled());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_EQ(dog.hung_count(), 0u);
}

TEST(Watchdog, StalledFaultyFsWriteIsCancelledAsAHungNode) {
    Watchdog dog(30);
    const Watchdog::Scope scope = dog.watch("stalled writer");
    ScopedCellToken install(scope.token());

    FaultPlan plan;
    plan.stall_rate = 1.0;
    plan.max_stall_polls = 60000;  // without the watchdog this would stall ~1 min
    FaultyFs faulty(plan);
    try {
        faulty.write_file(std::filesystem::path(::testing::TempDir()) / "stalled.txt", "x");
        FAIL() << "expected TransientError from the cancelled stall";
    } catch (const TransientError& e) {
        EXPECT_NE(std::string(e.what()).find("hung node"), std::string::npos) << e.what();
    }
    ASSERT_FALSE(faulty.fault_trace().empty());
    EXPECT_EQ(faulty.fault_trace().back().kind, FaultKind::kStall);
    EXPECT_EQ(dog.hung_count(), 1u);
}

TEST(Watchdog, UnwatchedStallGivesUpAndProceeds) {
    // No watchdog, no token: the stall burns its poll budget and the write
    // then lands, so a stray stall fault can never hang a plain test run.
    FaultPlan plan;
    plan.stall_rate = 1.0;
    plan.max_stall_polls = 3;
    FaultyFs faulty(plan);
    const std::filesystem::path p =
        std::filesystem::path(::testing::TempDir()) / "unwatched_stall.txt";
    faulty.write_file(p, "landed anyway");
    EXPECT_EQ(real_fs().read_file(p), "landed anyway");
}

}  // namespace
}  // namespace zerodeg::core

namespace zerodeg::experiment {
namespace {

// End-to-end: a census cell that hangs on its first attempt is cancelled by
// the plan's deadline, charged against cell_attempts, succeeds on retry, and
// shows up in the harness stats — the sweep finishes with correct output.
TEST(ParallelCensusWatchdog, HungCellIsCancelledRetriedAndReported) {
    CensusPlan plan;
    plan.base_seed = 500;
    plan.seeds = 2;
    plan.cell_attempts = 2;
    plan.cell_deadline_ms = 50;

    auto first_attempt_done = std::make_shared<std::map<std::uint64_t, bool>>();
    auto mutex = std::make_shared<std::mutex>();
    plan.run_cell = [first_attempt_done, mutex](const ExperimentConfig& cfg) -> FaultCensus {
        bool hang = false;
        {
            std::lock_guard<std::mutex> lock(*mutex);
            bool& done = (*first_attempt_done)[cfg.master_seed];
            hang = !done;
            done = true;
        }
        if (hang) {
            const core::CancelToken* token = core::current_cell_token();
            if (token != nullptr) {
                for (int i = 0; i < 10000 && !token->cancelled(); ++i) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                }
                token->throw_if_cancelled("cell hung in run_cell");
            }
            throw core::TransientError("no watchdog token installed");
        }
        return synthetic_census(cfg);
    };

    const CensusResult result = ParallelCensus(plan, 2).run();
    EXPECT_EQ(result.harness.hung_cells, 2u);
    ASSERT_EQ(result.harness.hung_cell_labels.size(), 2u);
    EXPECT_EQ(result.harness.hung_cell_labels[0], "cell 0");
    EXPECT_EQ(result.harness.hung_cell_labels[1], "cell 1");
    ASSERT_EQ(result.censuses.size(), 2u);
    for (std::size_t i = 0; i < plan.seeds; ++i) {
        ExperimentConfig cfg;
        cfg.master_seed = plan.base_seed + i;
        EXPECT_EQ(result.censuses[i].load_runs, synthetic_census(cfg).load_runs);
    }
}

}  // namespace
}  // namespace zerodeg::experiment
