#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace zerodeg::core {
namespace {

TEST(RunningStats, Basic) {
    RunningStats s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample variance of this classic data set: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesCombined) {
    RunningStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i * 0.7) * 10.0 + i * 0.1;
        (i % 2 == 0 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean_before = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);
    RunningStats c;
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(Percentile, KnownValues) {
    const std::vector<double> data{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(data, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(data, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(data, 25.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(data, 12.5), 1.5);  // interpolated
}

TEST(Percentile, UnsortedInput) {
    EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0, 2.0, 4.0}, 50.0), 3.0);
}

TEST(Percentile, SingleElement) {
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, Errors) {
    EXPECT_THROW((void)percentile({}, 50.0), InvalidArgument);
    EXPECT_THROW((void)percentile({1.0}, -1.0), InvalidArgument);
    EXPECT_THROW((void)percentile({1.0}, 101.0), InvalidArgument);
}

TEST(Correlation, PerfectPositiveAndNegative) {
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
    const std::vector<double> ny{8.0, 6.0, 4.0, 2.0};
    EXPECT_NEAR(pearson_correlation(x, ny), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero) {
    EXPECT_DOUBLE_EQ(pearson_correlation({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}), 0.0);
}

TEST(Correlation, Errors) {
    EXPECT_THROW((void)pearson_correlation({1.0}, {1.0, 2.0}), InvalidArgument);
    EXPECT_THROW((void)pearson_correlation({1.0}, {1.0}), InvalidArgument);
}

TEST(HistogramTest, BinPlacement) {
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(9.9);   // bin 4
    h.add(5.0);   // bin 2
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(2), 1u);
    EXPECT_EQ(h.bin_count(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(HistogramTest, BinEdges) {
    Histogram h(-20.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.bin_low(0), -20.0);
    EXPECT_DOUBLE_EQ(h.bin_high(0), -10.0);
    EXPECT_DOUBLE_EQ(h.bin_low(3), 10.0);
}

TEST(HistogramTest, Errors) {
    EXPECT_THROW(Histogram(0.0, 10.0, 0), InvalidArgument);
    EXPECT_THROW(Histogram(10.0, 10.0, 2), InvalidArgument);
    EXPECT_THROW(Histogram(11.0, 10.0, 2), InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::core
