#include "hardware/smart.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::hardware {
namespace {

using core::Celsius;
using core::Duration;

TEST(Smart, FreshDriveIsHealthy) {
    const SmartData s;
    EXPECT_TRUE(s.overall_health_ok());
    EXPECT_EQ(s.attribute(SmartId::kPowerOnHours).raw, 0);
    EXPECT_EQ(s.attribute(SmartId::kReallocatedSectors).raw, 0);
}

TEST(Smart, AccruesPowerOnHours) {
    SmartData s;
    s.accrue(Duration::hours(10), Celsius{30.0});
    EXPECT_NEAR(s.power_on_hours(), 10.0, 1e-9);
    EXPECT_EQ(s.attribute(SmartId::kPowerOnHours).raw, 10);
}

TEST(Smart, TracksTemperatureExtremes) {
    SmartData s;
    s.accrue(Duration::minutes(10), Celsius{-4.0});
    s.accrue(Duration::minutes(10), Celsius{35.0});
    s.accrue(Duration::minutes(10), Celsius{10.0});
    EXPECT_DOUBLE_EQ(s.min_temperature_seen().value(), -4.0);
    EXPECT_DOUBLE_EQ(s.max_temperature_seen().value(), 35.0);
    EXPECT_EQ(s.attribute(SmartId::kTemperature).raw, 10);
}

TEST(Smart, AirflowNormalizedValueDropsWhenHot) {
    SmartData s;
    s.accrue(Duration::minutes(10), Celsius{45.0});
    const SmartAttribute& a = s.attribute(SmartId::kAirflowTemperature);
    EXPECT_EQ(a.value, 55);
    EXPECT_LE(a.worst, 55);
}

TEST(Smart, PowerCycleCounts) {
    SmartData s;
    for (int i = 0; i < 5; ++i) s.power_cycle();
    EXPECT_EQ(s.attribute(SmartId::kPowerCycles).raw, 5);
}

TEST(Smart, ReallocatedSectorsDegradeValue) {
    SmartData s;
    s.add_reallocated_sectors(200);
    const SmartAttribute& a = s.attribute(SmartId::kReallocatedSectors);
    EXPECT_EQ(a.raw, 200);
    EXPECT_LT(a.value, 100);
    EXPECT_FALSE(a.failed_threshold());  // 75 > 36
    s.add_reallocated_sectors(400);
    EXPECT_TRUE(s.attribute(SmartId::kReallocatedSectors).failed_threshold());
    EXPECT_FALSE(s.overall_health_ok());
}

TEST(Smart, NegativeCountsThrow) {
    SmartData s;
    EXPECT_THROW(s.add_reallocated_sectors(-1), core::InvalidArgument);
    EXPECT_THROW(s.add_pending_sectors(-1), core::InvalidArgument);
}

TEST(Smart, LongTestResolvesPendingSectors) {
    SmartData s;
    s.add_pending_sectors(10);
    EXPECT_EQ(s.attribute(SmartId::kPendingSectors).raw, 10);
    const SelfTestResult r = s.run_long_test();
    EXPECT_EQ(r, SelfTestResult::kPassed);
    EXPECT_EQ(s.attribute(SmartId::kPendingSectors).raw, 0);
    EXPECT_EQ(s.attribute(SmartId::kReallocatedSectors).raw, 5);  // half reallocated
}

TEST(Smart, CleanDrivePassesLongTest) {
    // Section 4.2.2: "the hard drives have passed their S.M.A.R.T. long
    // test runs" — which exonerated them.
    SmartData s;
    s.accrue(Duration::days(30), Celsius{5.0});
    EXPECT_EQ(s.run_long_test(), SelfTestResult::kPassed);
}

TEST(Smart, UnknownAttributeThrows) {
    const SmartData s;
    EXPECT_THROW((void)s.attribute(static_cast<SmartId>(99)), core::InvalidArgument);
}

TEST(Smart, AttributeNames) {
    EXPECT_STREQ(to_string(SmartId::kReallocatedSectors), "Reallocated_Sector_Ct");
    EXPECT_STREQ(to_string(SmartId::kTemperature), "Temperature_Celsius");
    EXPECT_STREQ(to_string(SelfTestResult::kPassed), "Completed without error");
}

}  // namespace
}  // namespace zerodeg::hardware
