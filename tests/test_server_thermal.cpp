#include "thermal/server_thermal.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace zerodeg::thermal {
namespace {

using core::Celsius;
using core::Duration;
using core::Watts;

ServerThermalModel settled(ServerThermalConfig cfg, Celsius intake, Watts cpu, Watts total,
                           double airflow = 1.0) {
    ServerThermalModel m(cfg, intake);
    for (int i = 0; i < 400; ++i) m.step(Duration::minutes(2), intake, cpu, total, airflow);
    return m;
}

TEST(ServerThermal, CpuSteadyStateDelta) {
    const ServerThermalConfig cfg = tower_thermal_config();
    const auto m = settled(cfg, Celsius{-10.0}, Watts{28.0}, Watts{110.0});
    EXPECT_NEAR(m.cpu_temperature().value(), -10.0 + 28.0 * cfg.cpu_resistance_k_per_w, 0.2);
}

TEST(ServerThermal, PrototypeObservation) {
    // The paper's anchor: ~-9 degC intake, near-idle machine, CPU around
    // -4 degC.  Idle CPU power ~12-15 W at R=0.38 gives a ~5 K rise.
    const auto m = settled(tower_thermal_config(), Celsius{-9.2}, Watts{13.0}, Watts{80.0});
    EXPECT_NEAR(m.cpu_temperature().value(), -4.3, 1.0);
}

TEST(ServerThermal, CaseAirFollowsTotalPower) {
    const ServerThermalConfig cfg = tower_thermal_config();
    const auto idle = settled(cfg, Celsius{0.0}, Watts{12.0}, Watts{80.0});
    const auto busy = settled(cfg, Celsius{0.0}, Watts{65.0}, Watts{160.0});
    EXPECT_GT(busy.case_air_temperature().value(), idle.case_air_temperature().value() + 3.0);
}

TEST(ServerThermal, AirflowCools) {
    const ServerThermalConfig cfg = tower_thermal_config();
    const auto nominal = settled(cfg, Celsius{0.0}, Watts{40.0}, Watts{120.0}, 1.0);
    const auto breezy = settled(cfg, Celsius{0.0}, Watts{40.0}, Watts{120.0}, 2.0);
    EXPECT_LT(breezy.cpu_temperature().value(), nominal.cpu_temperature().value());
    const auto choked = settled(cfg, Celsius{0.0}, Watts{40.0}, Watts{120.0}, 0.3);
    EXPECT_GT(choked.cpu_temperature().value(), nominal.cpu_temperature().value());
}

TEST(ServerThermal, SffRunsHotterThanTower) {
    // Vendor B's cramped case is the "known unreliable" series' problem.
    const auto tower = settled(tower_thermal_config(), Celsius{21.0}, Watts{30.0}, Watts{90.0});
    const auto sff = settled(sff_thermal_config(), Celsius{21.0}, Watts{30.0}, Watts{90.0});
    EXPECT_GT(sff.cpu_temperature().value(), tower.cpu_temperature().value() + 3.0);
    EXPECT_GT(sff.hdd_temperature().value(), tower.hdd_temperature().value() + 2.0);
}

TEST(ServerThermal, RackMovesMostAir) {
    const auto rack = settled(rack_2u_thermal_config(), Celsius{21.0}, Watts{60.0},
                              Watts{250.0});
    const auto tower = settled(tower_thermal_config(), Celsius{21.0}, Watts{60.0},
                               Watts{250.0});
    EXPECT_LT(rack.cpu_temperature().value(), tower.cpu_temperature().value());
}

TEST(ServerThermal, HddSitsAboveCaseAir) {
    const auto m = settled(tower_thermal_config(), Celsius{5.0}, Watts{25.0}, Watts{100.0});
    EXPECT_GT(m.hdd_temperature().value(), m.case_air_temperature().value() + 1.0);
}

TEST(ServerThermal, SurfaceBetweenIntakeAndCase) {
    const auto m = settled(tower_thermal_config(), Celsius{-15.0}, Watts{30.0}, Watts{110.0});
    const double surface = m.case_surface_temperature(Celsius{-15.0}).value();
    EXPECT_GT(surface, -15.0);
    EXPECT_LT(surface, m.case_air_temperature().value());
}

TEST(ServerThermal, RespondsWithLag) {
    ServerThermalModel m(tower_thermal_config(), Celsius{20.0});
    // One short step toward much colder intake: CPU moves, but nowhere near
    // equilibrium yet.
    m.step(Duration::seconds(30), Celsius{-20.0}, Watts{20.0}, Watts{90.0}, 1.0);
    EXPECT_GT(m.cpu_temperature().value(), 0.0);
    EXPECT_LT(m.cpu_temperature().value(), 20.0);
}

TEST(ServerThermal, Validation) {
    ServerThermalModel m(tower_thermal_config(), Celsius{0.0});
    EXPECT_THROW(m.step(Duration::seconds(-1), Celsius{0.0}, Watts{1.0}, Watts{1.0}),
                 core::InvalidArgument);
    EXPECT_THROW(m.step(Duration::seconds(1), Celsius{0.0}, Watts{1.0}, Watts{1.0}, 0.0),
                 core::InvalidArgument);
}

// Property sweep: at equilibrium the CPU is always the hottest reading and
// everything is at or above intake, across intakes and loads.
struct ThermalCase {
    double intake;
    double cpu_w;
    double total_w;
};

class ThermalOrdering : public ::testing::TestWithParam<ThermalCase> {};

TEST_P(ThermalOrdering, IntakeBelowCaseBelowCpu) {
    const ThermalCase c = GetParam();
    const auto m = settled(tower_thermal_config(), Celsius{c.intake}, Watts{c.cpu_w},
                           Watts{c.total_w});
    EXPECT_GE(m.case_air_temperature().value(), c.intake - 0.01);
    EXPECT_GE(m.cpu_temperature().value(), c.intake - 0.01);
    EXPECT_GE(m.cpu_temperature().value(), m.case_air_temperature().value() - 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThermalOrdering,
                         ::testing::Values(ThermalCase{-22.0, 15.0, 80.0},
                                           ThermalCase{-10.0, 30.0, 110.0},
                                           ThermalCase{0.0, 65.0, 160.0},
                                           ThermalCase{21.0, 45.0, 130.0},
                                           ThermalCase{30.0, 95.0, 300.0}));

}  // namespace
}  // namespace zerodeg::thermal
