#include "weather/weather_model.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "weather/trace_io.hpp"

namespace zerodeg::weather {
namespace {

using core::Duration;
using core::RunningStats;
using core::TimePoint;

TEST(WeatherModel, BaselineInterpolatesAnchors) {
    const WeatherConfig cfg = helsinki_2010_config();
    WeatherModel model(cfg, 1);
    // Exactly at an anchor.
    EXPECT_NEAR(model.baseline(TimePoint::from_date(2010, 2, 13)).value(), -9.2, 1e-9);
    // Between anchors: bounded by the neighbors.
    const double v = model.baseline(TimePoint::from_date(2010, 4, 17)).value();
    EXPECT_GT(v, 3.0);
    EXPECT_LT(v, 7.0);
    // Outside the range: clamped to the edge anchors.
    EXPECT_NEAR(model.baseline(TimePoint::from_date(2009, 12, 1)).value(), -11.0, 1e-9);
    EXPECT_NEAR(model.baseline(TimePoint::from_date(2010, 7, 1)).value(), 14.0, 1e-9);
}

TEST(WeatherModel, ColdSnapDeepensDeterministicTemperature) {
    WeatherModel model(helsinki_2010_config(), 1);
    // Middle of the scripted Feb 21-23 snap vs. the day before it.
    const double before =
        model.deterministic_temperature(TimePoint::from_civil({2010, 2, 20, 14, 0, 0})).value();
    const double during =
        model.deterministic_temperature(TimePoint::from_civil({2010, 2, 22, 14, 0, 0})).value();
    EXPECT_LT(during, before - 5.0);
}

TEST(WeatherModel, DiurnalCycleColdAtNight) {
    WeatherModel model(helsinki_2010_config(), 1);
    const double night =
        model.deterministic_temperature(TimePoint::from_civil({2010, 3, 10, 4, 0, 0})).value();
    const double afternoon =
        model.deterministic_temperature(TimePoint::from_civil({2010, 3, 10, 15, 0, 0})).value();
    EXPECT_LT(night, afternoon);
}

TEST(WeatherModel, Deterministic) {
    WeatherModel a(helsinki_2010_config(), 99);
    WeatherModel b(helsinki_2010_config(), 99);
    for (int i = 0; i < 200; ++i) {
        const TimePoint t = TimePoint::from_date(2010, 2, 19) + Duration::minutes(10 * i);
        const WeatherSample sa = a.advance_to(t);
        const WeatherSample sb = b.advance_to(t);
        EXPECT_DOUBLE_EQ(sa.temperature.value(), sb.temperature.value());
        EXPECT_DOUBLE_EQ(sa.humidity.value(), sb.humidity.value());
        EXPECT_DOUBLE_EQ(sa.wind.value(), sb.wind.value());
    }
}

TEST(WeatherModel, TimeBackwardsThrows) {
    WeatherModel model(helsinki_2010_config(), 1);
    (void)model.advance_to(TimePoint::from_date(2010, 3, 1));
    EXPECT_THROW((void)model.advance_to(TimePoint::from_date(2010, 2, 1)),
                 core::InvalidArgument);
}

TEST(WeatherModel, SeasonStatistics) {
    WeatherModel model(helsinki_2010_config(), 7);
    RunningStats feb, may;
    for (TimePoint t = TimePoint::from_date(2010, 2, 19); t < TimePoint::from_date(2010, 3, 1);
         t += Duration::minutes(30)) {
        feb.add(model.advance_to(t).temperature.value());
    }
    for (TimePoint t = TimePoint::from_date(2010, 5, 1); t < TimePoint::from_date(2010, 5, 10);
         t += Duration::minutes(30)) {
        may.add(model.advance_to(t).temperature.value());
    }
    // February is deep winter; May is spring (the paper's "conditions are
    // likely to shift rapidly").
    EXPECT_LT(feb.mean(), -6.0);
    EXPECT_GT(may.mean(), 5.0);
    // The experiment's headline: outside air somewhere near -22 degC.
    EXPECT_LT(feb.min(), -17.0);
    EXPECT_GT(feb.min(), -30.0);
}

TEST(WeatherModel, HumidityBounds) {
    WeatherModel model(helsinki_2010_config(), 3);
    for (TimePoint t = TimePoint::from_date(2010, 2, 19); t < TimePoint::from_date(2010, 3, 5);
         t += Duration::minutes(30)) {
        const WeatherSample s = model.advance_to(t);
        EXPECT_GE(s.humidity.value(), 0.0);
        EXPECT_LE(s.humidity.value(), 100.0);
        EXPECT_LE(s.dew_point.value(), s.temperature.value() + 0.01);
        EXPECT_GE(s.wind.value(), 0.0);
        EXPECT_GE(s.irradiance.value(), 0.0);
    }
}

TEST(WeatherModel, SnowOnlyWhenCold) {
    WeatherModel model(helsinki_2010_config(), 5);
    for (TimePoint t = TimePoint::from_date(2010, 2, 19); t < TimePoint::from_date(2010, 5, 20);
         t += Duration::hours(1)) {
        const WeatherSample s = model.advance_to(t);
        if (s.snowing) {
            EXPECT_LT(s.temperature.value(), 0.5);
            EXPECT_GT(s.precip_mm_per_h, 0.0);
        }
    }
}

TEST(WeatherModel, NeedsTwoAnchors) {
    WeatherConfig cfg = helsinki_2010_config();
    cfg.anchors.resize(1);
    EXPECT_THROW(WeatherModel(cfg, 1), core::InvalidArgument);
}

TEST(WeatherModel, AnchorsMustBeOrdered) {
    WeatherConfig cfg = helsinki_2010_config();
    std::swap(cfg.anchors[0], cfg.anchors[1]);
    EXPECT_THROW(WeatherModel(cfg, 1), core::InvalidArgument);
}

TEST(TraceIo, GenerateAndRoundTrip) {
    WeatherModel model(helsinki_2010_config(), 17);
    const auto trace = generate_trace(model, TimePoint::from_date(2010, 2, 19),
                                      TimePoint::from_date(2010, 2, 21), Duration::hours(1));
    ASSERT_EQ(trace.size(), 49u);

    std::stringstream ss;
    write_trace(ss, trace);
    const auto back = read_trace(ss);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(back[i].time, trace[i].time);
        EXPECT_NEAR(back[i].temperature.value(), trace[i].temperature.value(), 0.01);
        EXPECT_NEAR(back[i].humidity.value(), trace[i].humidity.value(), 0.1);
    }
}

TEST(TraceIo, RejectsGarbage) {
    std::stringstream empty;
    EXPECT_THROW((void)read_trace(empty), core::CorruptData);
    std::stringstream bad_header("nope,x\n");
    EXPECT_THROW((void)read_trace(bad_header), core::CorruptData);
    std::stringstream no_rows("time,temp_degC,rh_pct,wind_mps,ghi_wm2,cloud,precip_mm_h\n");
    EXPECT_THROW((void)read_trace(no_rows), core::CorruptData);
}

TEST(TraceIo, PlayerInterpolates) {
    WeatherModel model(helsinki_2010_config(), 17);
    const auto trace = generate_trace(model, TimePoint::from_date(2010, 3, 1),
                                      TimePoint::from_date(2010, 3, 2), Duration::hours(1));
    const TracePlayer player(trace);
    const TimePoint mid = TimePoint::from_civil({2010, 3, 1, 5, 30, 0});
    const WeatherSample s = player.at(mid);
    const double lo = std::min(trace[5].temperature.value(), trace[6].temperature.value());
    const double hi = std::max(trace[5].temperature.value(), trace[6].temperature.value());
    EXPECT_GE(s.temperature.value(), lo - 1e-9);
    EXPECT_LE(s.temperature.value(), hi + 1e-9);
    // Clamps outside the trace.
    EXPECT_DOUBLE_EQ(player.at(TimePoint::from_date(2009, 1, 1)).temperature.value(),
                     trace.front().temperature.value());
    EXPECT_DOUBLE_EQ(player.at(TimePoint::from_date(2011, 1, 1)).temperature.value(),
                     trace.back().temperature.value());
}

TEST(TraceIo, EmptyPlayerThrows) {
    EXPECT_THROW(TracePlayer(std::vector<WeatherSample>{}), core::InvalidArgument);
}

}  // namespace
}  // namespace zerodeg::weather
